package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderingByTime(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 3, Kind: KindArrival})
	q.Push(Event{Time: 1, Kind: KindArrival})
	q.Push(Event{Time: 2, Kind: KindArrival})
	var got []float64
	for q.Len() > 0 {
		got = append(got, q.Pop().Time)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events popped out of order: %v", got)
	}
}

func TestKindBreaksTies(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 5, Kind: KindArrival, Job: 1})
	q.Push(Event{Time: 5, Kind: KindCompletion, Job: 2})
	q.Push(Event{Time: 5, Kind: KindBookkeeping, Job: 3})
	want := []Kind{KindCompletion, KindBookkeeping, KindArrival}
	for _, k := range want {
		if e := q.Pop(); e.Kind != k {
			t.Fatalf("got kind %v, want %v", e.Kind, k)
		}
	}
}

func TestInsertionOrderBreaksFullTies(t *testing.T) {
	var q Queue
	for id := 0; id < 10; id++ {
		q.Push(Event{Time: 1, Kind: KindArrival, Job: int32(id)})
	}
	for id := 0; id < 10; id++ {
		if e := q.Pop(); int(e.Job) != id {
			t.Fatalf("tie broken out of insertion order: got %d want %d", e.Job, id)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 1})
	if q.Peek().Time != 1 || q.Len() != 1 {
		t.Fatal("Peek modified the queue")
	}
}

func TestQuickAlwaysSorted(t *testing.T) {
	f := func(times []float64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		for _, tt := range times {
			if tt < 0 {
				tt = -tt
			}
			q.Push(Event{Time: tt, Kind: Kind(rng.Intn(3))})
		}
		last := -1.0
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < last {
				return false
			}
			last = e.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	rng := rand.New(rand.NewSource(42))
	last := 0.0
	pushed, popped := 0, 0
	for i := 0; i < 1000; i++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			// future events only: times must not precede the clock
			q.Push(Event{Time: last + rng.Float64()})
			pushed++
		} else {
			e := q.Pop()
			popped++
			if e.Time < last {
				t.Fatalf("time went backwards: %v < %v", e.Time, last)
			}
			last = e.Time
		}
	}
	if popped+q.Len() != pushed {
		t.Fatalf("lost events: pushed %d, popped %d, left %d", pushed, popped, q.Len())
	}
}

func TestInitMatchesPushes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make([]Event, 500)
	for i := range events {
		events[i] = Event{Time: rng.Float64() * 100, Kind: Kind(rng.Intn(3)), Job: int32(i)}
	}
	var bulk, oneByOne Queue
	bulk.Init(events)
	for _, e := range events {
		oneByOne.Push(e)
	}
	for oneByOne.Len() > 0 {
		a, b := bulk.Pop(), oneByOne.Pop()
		if a != b {
			t.Fatalf("bulk Init diverged from pushes: %+v vs %+v", a, b)
		}
	}
	if bulk.Len() != 0 {
		t.Fatalf("bulk queue has %d leftover events", bulk.Len())
	}
}

func TestPushBatchMatchesPushes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Both the empty-queue heapify path and the incremental sift path, with
	// tie-heavy times so sequence order is load-bearing.
	for _, preload := range []int{0, 1, 37} {
		events := make([]Event, 300)
		for i := range events {
			events[i] = Event{Time: float64(rng.Intn(20)), Kind: Kind(rng.Intn(3)), Job: int32(i)}
		}
		var bulk, oneByOne Queue
		for i := 0; i < preload; i++ {
			e := Event{Time: float64(rng.Intn(20)), Kind: Kind(rng.Intn(3)), Job: int32(1000 + i)}
			bulk.Push(e)
			oneByOne.Push(e)
		}
		bulk.PushBatch(events)
		for _, e := range events {
			oneByOne.Push(e)
		}
		for oneByOne.Len() > 0 {
			a, b := bulk.Pop(), oneByOne.Pop()
			if a != b {
				t.Fatalf("preload %d: PushBatch diverged from pushes: %+v vs %+v", preload, a, b)
			}
		}
		if bulk.Len() != 0 {
			t.Fatalf("preload %d: bulk queue has %d leftover events", preload, bulk.Len())
		}
	}
}

func TestPushBatchThenPushKeepsSequenceOrder(t *testing.T) {
	var q Queue
	q.PushBatch([]Event{{Time: 1, Kind: KindArrival, Job: 0}, {Time: 1, Kind: KindArrival, Job: 1}, {Time: 1, Kind: KindArrival, Job: 2}})
	q.Push(Event{Time: 1, Kind: KindArrival, Job: 3})
	q.PushBatch([]Event{{Time: 1, Kind: KindArrival, Job: 4}})
	for want := int32(0); want < 5; want++ {
		if e := q.Pop(); e.Job != want {
			t.Fatalf("got job %d, want %d", e.Job, want)
		}
	}
}

func TestInitThenPushKeepsSequenceOrder(t *testing.T) {
	var q Queue
	q.Init([]Event{{Time: 1, Kind: KindArrival, Job: 0}, {Time: 1, Kind: KindArrival, Job: 1}})
	q.Push(Event{Time: 1, Kind: KindArrival, Job: 2})
	for want := int32(0); want < 3; want++ {
		if e := q.Pop(); e.Job != want {
			t.Fatalf("got job %d, want %d", e.Job, want)
		}
	}
}

func TestGrowPreservesContents(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 2, Job: 1})
	q.Grow(1000)
	q.Push(Event{Time: 1, Job: 2})
	if e := q.Pop(); e.Job != 2 || q.Len() != 1 {
		t.Fatalf("Grow corrupted the queue: %+v len=%d", e, q.Len())
	}
}

func TestInitEmptyAndSingle(t *testing.T) {
	var q Queue
	q.Init(nil) // must not panic
	if q.Len() != 0 {
		t.Fatalf("empty Init: len %d", q.Len())
	}
	q.Init([]Event{{Time: 3, Job: 1}})
	if e := q.Pop(); e.Job != 1 || q.Len() != 0 {
		t.Fatalf("single Init broken: %+v", e)
	}
}
