package eventq

import (
	"math"
	"slices"
)

// Calendar is a bucketed ladder ("calendar") queue satisfying the exact
// deterministic pop-order contract of Queue: events pop in (Time, Kind,
// insertion-seq) order, with the packed ord word breaking every tie, so the
// observable sequence is provably independent of bucket layout. Where the
// heap pays O(log n) sifts per operation, the calendar pays O(1) amortized
// per push and a near-O(1) pop on the release-ordered streams the engine
// produces (event times never precede the time being handled).
//
// Layout: a window of `len(buckets)` rungs partitions [start, start+nb·w);
// bucket i holds events with floor((Time−start)/w) == i, unsorted. Because
// floor((t−start)/w) is monotone in t, every event in a later bucket is
// strictly later than every event in an earlier one — float rounding can
// only shift the boundary, never reorder it — so the global minimum always
// sits in the first non-empty bucket (or in one of the fallback rungs below)
// and a full (Time, ord) min-scan of that one bucket is exact.
//
// Two fallback rungs make arbitrary push orders correct, not just the
// engine's monotone one: `low` holds events below the window (and,
// defensively, non-finite times) and is min-compared on every pop; `over`
// holds events at/beyond the window end, which are provably strictly later
// than every bucketed event and are only consulted when the window drains.
// When that happens the window reseeds over the whole span of `over` —
// width = span/nb, nb sized from the observed event count, i.e. the bucket
// width tracks the observed cadence — so each event is staged in `over` at
// most once before being bucketed: O(1) amortized moves per event.
//
// Bucket storage is arena-style: bucket slices are truncated, never freed,
// and slices retired by a narrower reseed park on a free list (`spare`) for
// the next widening, so steady-state operation does not allocate.
//
// The zero value is ready to use.
type Calendar struct {
	seq uint64
	n   int

	// Window geometry. width == 0 means no window yet: every finite event
	// stages in over and the first pop seeds the window from it.
	start float64
	width float64
	invw  float64

	buckets [][]Event
	cur     int // first bucket that may be non-empty

	low   []Event   // below the window, or non-finite; min-compared each pop
	over  []Event   // at/beyond the window end; strictly later than buckets
	spare [][]Event // retired bucket slices (capacity reuse across reseeds)

	scratch []Event // snapshot staging (sorted emission)

	// Peek/Pop memo: the drain loop peeks then pops, so the min-scan result
	// is cached and invalidated by any mutation.
	mloc int8
	midx int
}

// Min-location memo states.
const (
	locNone int8 = iota
	locLow
	locBucket
)

// Calendar sizing: nb grows as the next power of two covering the staged
// event count, clamped so a bucket header array never dominates memory and a
// tiny queue never pays a wide scan.
const (
	calMinBuckets = 8
	calMaxBuckets = 8192
)

// NewCalendar returns an empty calendar queue. The zero value works too;
// the constructor exists for symmetry with the engine's factory seam.
func NewCalendar() *Calendar { return &Calendar{} }

// Push inserts an event, assigning the next insertion sequence.
func (c *Calendar) Push(e Event) {
	e.ord = uint64(e.Kind)<<ordShift | c.seq
	c.seq++
	c.place(e)
}

// PushBatch inserts a batch, assigning insertion sequence in slice order —
// pop order identical to pushing each event individually. The slice is
// copied, not retained.
func (c *Calendar) PushBatch(events []Event) {
	c.Grow(len(events))
	for _, e := range events {
		c.Push(e)
	}
}

// Init replaces the queue contents with the batch, assigning insertion
// sequence in slice order; the sequence counter keeps running, exactly as
// Queue.Init.
func (c *Calendar) Init(events []Event) {
	c.clear()
	c.PushBatch(events)
}

// Grow reserves capacity for n additional events in the staging rung. Unlike
// the heap the calendar cannot presize individual buckets (their fill is
// workload-dependent), but the overflow rung is where cold pushes land, so
// growing it removes the growth allocations of the first window.
func (c *Calendar) Grow(n int) {
	if free := cap(c.over) - len(c.over); free < n {
		no := make([]Event, len(c.over), len(c.over)+n)
		copy(no, c.over)
		c.over = no
	}
}

// Len reports the number of pending events.
func (c *Calendar) Len() int { return c.n }

// place routes one ord-carrying event to its rung. It never touches seq, so
// Restore reuses it for events whose ord must be preserved.
func (c *Calendar) place(e Event) {
	c.n++
	c.mloc = locNone
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
		// Defensive: the engine never produces these, but the low rung is
		// min-compared on every pop, so even ±Inf pops in correct order.
		c.low = append(c.low, e)
		return
	}
	if c.width == 0 {
		c.over = append(c.over, e)
		return
	}
	x := (e.Time - c.start) * c.invw
	switch {
	case x < 0:
		c.low = append(c.low, e)
	case x >= float64(len(c.buckets)):
		c.over = append(c.over, e)
	default:
		idx := int(x)
		c.buckets[idx] = append(c.buckets[idx], e)
		if idx < c.cur {
			c.cur = idx
		}
	}
}

// reseed rebuilds the window over the full span of the overflow rung.
// Precondition: every bucket is empty and over is non-empty.
func (c *Calendar) reseed() {
	tmin, tmax := math.Inf(1), math.Inf(-1)
	for k := range c.over {
		t := c.over[k].Time
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	nb := calMinBuckets
	for nb < len(c.over) && nb < calMaxBuckets {
		nb <<= 1
	}
	// width = span/(nb−1) so tmax itself lands inside the window; the span
	// of the staged events is the observed cadence times their count, hence
	// the bucket width tracks the mean inter-event gap. Degenerate spans
	// (all one instant, or a span that overflows float64) fall back to a
	// unit width: correctness never depends on the spread, only the cursor
	// does, and bucket 0 always receives the tmin events so every reseed
	// makes progress.
	w := (tmax - tmin) / float64(nb-1)
	if !(w > 0) || math.IsInf(w, 0) {
		w = 1
	}
	c.start = tmin
	c.width = w
	c.invw = 1 / w
	c.cur = 0

	// Resize the rung array, parking retired slices on the free list.
	if len(c.buckets) > nb {
		for _, b := range c.buckets[nb:] {
			c.spare = append(c.spare, b[:0])
		}
		c.buckets = c.buckets[:nb]
	}
	for len(c.buckets) < nb {
		var b []Event
		if k := len(c.spare); k > 0 {
			b, c.spare = c.spare[k-1], c.spare[:k-1]
		}
		c.buckets = append(c.buckets, b)
	}
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}

	// Distribute. Events beyond the new window (possible only through float
	// overflow of the span) compact back into over in place: writes trail
	// reads, so the shared backing array is safe.
	old := c.over
	c.over = c.over[:0]
	for k := range old {
		e := old[k]
		x := (e.Time - c.start) * c.invw
		if x >= float64(nb) || math.IsInf(x, 0) {
			c.over = append(c.over, e)
			continue
		}
		if x < 0 {
			x = 0 // t == tmin with rounding below; never truly below window
		}
		idx := int(x)
		c.buckets[idx] = append(c.buckets[idx], e)
	}
}

// findMin locates the earliest event by the full (Time, ord) comparator:
// the min of the low rung against the min of the first non-empty bucket
// (reseeding from over when the window is exhausted). The location is
// memoized for the peek-then-pop drain pattern.
func (c *Calendar) findMin() (int8, int) {
	if c.mloc != locNone {
		return c.mloc, c.midx
	}
	for {
		if c.width != 0 {
			for c.cur < len(c.buckets) && len(c.buckets[c.cur]) == 0 {
				c.cur++
			}
			if c.cur < len(c.buckets) {
				break
			}
		}
		if len(c.over) == 0 {
			break
		}
		c.reseed()
	}
	bi := -1
	if c.width != 0 && c.cur < len(c.buckets) {
		b := c.buckets[c.cur]
		bi = 0
		for k := 1; k < len(b); k++ {
			if less(&b[k], &b[bi]) {
				bi = k
			}
		}
	}
	li := -1
	for k := range c.low {
		if li < 0 || less(&c.low[k], &c.low[li]) {
			li = k
		}
	}
	switch {
	case bi < 0 && li < 0:
		panic("eventq: empty calendar queue")
	case bi < 0:
		c.mloc, c.midx = locLow, li
	case li >= 0 && less(&c.low[li], &c.buckets[c.cur][bi]):
		c.mloc, c.midx = locLow, li
	default:
		c.mloc, c.midx = locBucket, bi
	}
	return c.mloc, c.midx
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// guard with Len.
func (c *Calendar) Pop() Event {
	loc, idx := c.findMin()
	c.mloc = locNone
	c.n--
	if loc == locLow {
		e := c.low[idx]
		last := len(c.low) - 1
		c.low[idx] = c.low[last]
		c.low = c.low[:last]
		return e
	}
	b := c.buckets[c.cur]
	e := b[idx]
	last := len(b) - 1
	b[idx] = b[last]
	c.buckets[c.cur] = b[:last]
	return e
}

// Peek returns the earliest event without removing it.
func (c *Calendar) Peek() Event {
	loc, idx := c.findMin()
	if loc == locLow {
		return c.low[idx]
	}
	return c.buckets[c.cur][idx]
}

// Scan calls fn on every pending event in rung order (not pop order),
// stopping early when fn returns false. Read-only, like Queue.Scan.
func (c *Calendar) Scan(fn func(e *Event) bool) {
	for i := range c.low {
		if !fn(&c.low[i]) {
			return
		}
	}
	for b := range c.buckets {
		for i := range c.buckets[b] {
			if !fn(&c.buckets[b][i]) {
				return
			}
		}
	}
	for i := range c.over {
		if !fn(&c.over[i]) {
			return
		}
	}
}

// clear empties every rung and forgets the window, retaining all storage.
// The sequence counter is left alone (Init semantics).
func (c *Calendar) clear() {
	c.n = 0
	c.mloc = locNone
	c.start, c.width, c.invw = 0, 0, 0
	c.cur = 0
	c.low = c.low[:0]
	c.over = c.over[:0]
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}
}

// Reset empties the queue and resets the insertion-sequence counter,
// retaining buckets, rungs and the spare list for reuse.
func (c *Calendar) Reset() {
	c.clear()
	c.seq = 0
}

// collectSorted gathers every pending event into the scratch slice in
// (Time, ord) order — the pop order, which is also a valid heap layout for
// any arity, so the emitted snapshot round-trips through Queue.Restore's
// parent check.
func (c *Calendar) collectSorted() []Event {
	s := c.scratch[:0]
	if cap(s) < c.n {
		s = make([]Event, 0, c.n)
	}
	c.Scan(func(e *Event) bool { s = append(s, *e); return true })
	slices.SortFunc(s, func(a, b Event) int {
		if a.Time != b.Time {
			if a.Time < b.Time {
				return -1
			}
			return 1
		}
		if a.ord != b.ord {
			if a.ord < b.ord {
				return -1
			}
			return 1
		}
		return 0
	})
	c.scratch = s
	return s
}
