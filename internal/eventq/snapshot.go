package eventq

import (
	"repro/internal/snapshot"
)

// Snapshot serializes the queue into one snapshot section payload: the
// insertion-sequence counter first, then every pending event in heap-slice
// order with its packed (Kind, seq) ord word. Writing the raw heap layout —
// not a sorted drain — keeps Snapshot O(n) and read-only, and lets Restore
// rebuild the identical array without re-heapifying: a valid heap's layout
// is itself the state.
//
// The ord word is what makes the round trip exact: it carries each event's
// original insertion sequence, so seq ties between events restored from a
// snapshot and events pushed after the restore resolve exactly as they would
// have in the uninterrupted run (new pushes continue from the restored
// counter).
func (q *Queue) Snapshot(e *snapshot.Encoder) {
	e.U64(q.seq)
	e.U64(uint64(len(q.h)))
	for i := range q.h {
		ev := &q.h[i]
		e.F64(ev.Time)
		e.U64(ev.ord)
		e.U32(uint32(ev.Job))
		e.U32(uint32(ev.Machine))
		e.U32(uint32(ev.Version))
	}
}

// eventWireBytes is the per-event payload size Snapshot writes, used to
// validate counts before allocating.
const eventWireBytes = 8 + 8 + 4 + 4 + 4

// Restore replaces the queue's contents with a snapshot written by Snapshot,
// validating as it decodes: the count is bounds-checked against the section,
// every ord must carry a known Kind and an insertion sequence below the
// restored counter, and the (Time, ord) heap property of the serialized
// layout is re-verified — corrupt bytes that slip past the container CRC
// fail loudly here instead of silently popping events out of order.
func (q *Queue) Restore(d *snapshot.Decoder) error {
	seq := d.U64()
	n := d.Count(eventWireBytes)
	if err := d.Err(); err != nil {
		return err
	}
	h := q.h[:0]
	if cap(h) < n {
		h = make([]Event, 0, n)
	}
	for i := 0; i < n; i++ {
		ev := Event{
			Time:    d.F64(),
			ord:     d.U64(),
			Job:     int32(d.U32()),
			Machine: int32(d.U32()),
			Version: int32(d.U32()),
		}
		if d.Err() != nil {
			return d.Err()
		}
		kind := Kind(ev.ord >> ordShift)
		if kind != KindCompletion && kind != KindBookkeeping && kind != KindArrival {
			d.Failf("event %d has unknown kind %d", i, kind)
			return d.Err()
		}
		ev.Kind = kind
		if evSeq := ev.ord & (uint64(1)<<ordShift - 1); evSeq >= seq {
			d.Failf("event %d has insertion seq %d at or above the queue counter %d", i, evSeq, seq)
			return d.Err()
		}
		if i > 0 {
			if p := &h[(i-1)/arity]; less(&ev, p) {
				d.Failf("event %d violates the heap order against its parent", i)
				return d.Err()
			}
		}
		h = append(h, ev)
	}
	q.h = h
	q.seq = seq
	return nil
}
