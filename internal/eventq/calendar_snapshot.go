package eventq

import (
	"repro/internal/snapshot"
)

// Snapshot serializes the calendar into the same EVTQ wire format as
// Queue.Snapshot: the insertion-sequence counter, the event count, then
// every pending event with its packed ord word — emitted in (Time, ord)
// order. A fully sorted array satisfies the d-ary heap property for every d,
// so Queue.Restore's parent check accepts a calendar snapshot verbatim: a
// run frozen under the calendar resumes bit-identically under the heap, and
// vice versa (the calendar's Restore accepts any layout, heap order
// included, because placement only depends on each event's own time).
//
// Sorted emission also makes the bytes canonical: two calendars holding the
// same events produce identical snapshots regardless of bucket layout
// history, mirroring the determinism argument for pop order.
func (c *Calendar) Snapshot(e *snapshot.Encoder) {
	e.U64(c.seq)
	e.U64(uint64(c.n))
	s := c.collectSorted()
	for i := range s {
		ev := &s[i]
		e.F64(ev.Time)
		e.U64(ev.ord)
		e.U32(uint32(ev.Job))
		e.U32(uint32(ev.Machine))
		e.U32(uint32(ev.Version))
	}
}

// Restore replaces the calendar's contents with a snapshot written by either
// implementation's Snapshot. Validation matches Queue.Restore where the
// check is layout-independent — known Kind, insertion seq below the restored
// counter — but no heap-property check applies: the calendar accepts events
// in any serialized order and re-buckets them by their own times, so a heap
// snapshot (raw heap layout) restores exactly as well as a sorted one.
func (c *Calendar) Restore(d *snapshot.Decoder) error {
	seq := d.U64()
	n := d.Count(eventWireBytes)
	if err := d.Err(); err != nil {
		return err
	}
	c.clear()
	c.Grow(n)
	for i := 0; i < n; i++ {
		ev := Event{
			Time:    d.F64(),
			ord:     d.U64(),
			Job:     int32(d.U32()),
			Machine: int32(d.U32()),
			Version: int32(d.U32()),
		}
		if d.Err() != nil {
			return d.Err()
		}
		kind := Kind(ev.ord >> ordShift)
		if kind != KindCompletion && kind != KindBookkeeping && kind != KindArrival {
			d.Failf("event %d has unknown kind %d", i, kind)
			return d.Err()
		}
		ev.Kind = kind
		if evSeq := ev.ord & (uint64(1)<<ordShift - 1); evSeq >= seq {
			d.Failf("event %d has insertion seq %d at or above the queue counter %d", i, evSeq, seq)
			return d.Err()
		}
		c.place(ev)
	}
	c.seq = seq
	return nil
}
