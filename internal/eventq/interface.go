package eventq

import "repro/internal/snapshot"

// Interface is the seam between the engine and an event-queue
// implementation. Both Queue (the 4-ary heap) and Calendar (the bucketed
// ladder queue) satisfy it with the exact same observable contract: events
// pop in (Time, Kind, insertion-seq) order, PushBatch/Init assign insertion
// sequence in slice order, and Snapshot/Restore speak one shared wire format
// (see snapshot.go) so a run frozen under either implementation resumes
// bit-identically under the other.
//
// The seam is deliberately narrow — exactly the surface the engine consumes —
// so implementations stay swappable behind engine.Options.EventQueue without
// the engine knowing which one it drives.
type Interface interface {
	// Push inserts an event, assigning the next insertion sequence.
	Push(e Event)
	// PushBatch inserts a batch, assigning sequence in slice order; the pop
	// order is identical to pushing each event individually.
	PushBatch(events []Event)
	// Init replaces the contents with the batch (sequence assignment as in
	// PushBatch); the insertion-sequence counter keeps running.
	Init(events []Event)
	// Grow reserves capacity for n additional events where the
	// implementation can (a heap presizes its array; a calendar presizes its
	// staging storage — per-bucket capacity is workload-dependent).
	Grow(n int)
	// Pop removes and returns the earliest event; panics when empty.
	Pop() Event
	// Peek returns the earliest event without removing it; panics when
	// empty. Implementations may advance internal cursors (a calendar skips
	// exhausted rungs) but the observable event sequence never changes.
	Peek() Event
	// Len reports the number of pending events.
	Len() int
	// Scan calls fn on every pending event in an implementation-defined
	// order (NOT pop order), stopping early when fn returns false. Read-only.
	Scan(fn func(e *Event) bool)
	// Reset empties the queue and resets the insertion-sequence counter to
	// zero, retaining every backing allocation for reuse.
	Reset()
	// Snapshot serializes the pending events with their ord words into the
	// shared EVTQ wire format.
	Snapshot(e *snapshot.Encoder)
	// Restore replaces the contents with a snapshot written by any
	// implementation's Snapshot, validating as it decodes.
	Restore(d *snapshot.Decoder) error
}

// Reset empties the queue and resets the insertion-sequence counter,
// retaining the backing array: a recycled session reuses the same heap
// storage instead of re-paying the doubling growth from scratch.
func (q *Queue) Reset() {
	q.h = q.h[:0]
	q.seq = 0
}
