package eventq

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/snapshot"
)

// Compile-time check: both implementations satisfy the engine seam.
var (
	_ Interface = (*Queue)(nil)
	_ Interface = (*Calendar)(nil)
)

// snapRoundTrip snapshots src through a full container cycle and restores
// into dst, failing the test on any error. src and dst may be different
// implementations: the EVTQ wire format is shared.
func snapRoundTrip(t *testing.T, src, dst Interface) {
	t.Helper()
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	if err := w.Section("EVTQ", func(e *snapshot.Encoder) { src.Snapshot(e) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("EVTQ")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestCalendarMatchesHeapRandom drives a heap and a calendar through the
// same random operation stream — pushes at arbitrary (non-monotone) times,
// interleaved pops — and requires identical pop sequences. Non-monotone
// pushes land below the calendar's window after reseeds, covering the low
// rung; tie-heavy coarse times make the ord word load-bearing.
func TestCalendarMatchesHeapRandom(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var h Queue
		var c Calendar
		coarse := trial%2 == 0
		for op := 0; op < 600; op++ {
			if h.Len() == 0 || rng.Intn(3) > 0 {
				tt := rng.Float64() * 50
				if coarse {
					tt = float64(rng.Intn(12))
				}
				ev := Event{Time: tt, Kind: Kind(rng.Intn(3)), Job: int32(op), Machine: int32(rng.Intn(4))}
				h.Push(ev)
				c.Push(ev)
			} else {
				a, b := h.Pop(), c.Pop()
				if a != b {
					t.Fatalf("trial %d op %d: calendar diverged: heap %+v calendar %+v", trial, op, a, b)
				}
			}
		}
		for h.Len() > 0 {
			a, b := h.Pop(), c.Pop()
			if a != b {
				t.Fatalf("trial %d drain: heap %+v calendar %+v", trial, a, b)
			}
		}
		if c.Len() != 0 {
			t.Fatalf("trial %d: calendar holds %d leftover events", trial, c.Len())
		}
	}
}

// TestCalendarBatchAndInitMatchHeap covers the PushBatch and Init sequence
// assignment against the heap's.
func TestCalendarBatchAndInitMatchHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	events := make([]Event, 400)
	for i := range events {
		events[i] = Event{Time: float64(rng.Intn(9)), Kind: Kind(rng.Intn(3)), Job: int32(i)}
	}
	var h Queue
	var c Calendar
	h.Init(events[:150])
	c.Init(events[:150])
	h.PushBatch(events[150:])
	c.PushBatch(events[150:])
	h.Push(Event{Time: 4, Kind: KindArrival, Job: 9999})
	c.Push(Event{Time: 4, Kind: KindArrival, Job: 9999})
	for h.Len() > 0 {
		a, b := h.Pop(), c.Pop()
		if a != b {
			t.Fatalf("batch stream diverged: heap %+v calendar %+v", a, b)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("calendar holds %d leftover events", c.Len())
	}
}

// TestCalendarBoundaryTies is the pop-order property test of the satellite
// task: events sharing one exact timestamp must pop by (Kind, seq) no matter
// where that timestamp falls relative to the calendar's bucket boundaries.
// The calendar is forced through a reseed with a known window geometry, then
// ties are planted exactly at bucket boundaries (start + k·width), just
// inside, and just outside; equal times always hash to the same bucket, so
// the within-bucket ord scan must decide — the heap is the oracle.
func TestCalendarBoundaryTies(t *testing.T) {
	for _, span := range []float64{1, 3, 7.5, 1e-3, 1e6} {
		var h Queue
		var c Calendar
		push := func(ev Event) { h.Push(ev); c.Push(ev) }
		// Seed a window: two events spanning [0, span] force width = span/(nb−1).
		push(Event{Time: 0, Kind: KindArrival, Job: -100})
		push(Event{Time: span, Kind: KindArrival, Job: -101})
		if a, b := h.Pop(), c.Pop(); a != b {
			t.Fatalf("span %v: seed pop diverged", span)
		}
		// The calendar's window now starts at 0 with width span/(calMinBuckets−1).
		w := span / float64(calMinBuckets-1)
		job := int32(0)
		for k := 0; k < calMinBuckets; k++ {
			boundary := float64(k) * w
			for _, tt := range []float64{boundary, boundary + w/4, boundary - w/4} {
				if tt < 0 {
					continue
				}
				// Three same-timestamp events of each kind, planted twice so
				// seq ties exist within a kind as well.
				for rep := 0; rep < 2; rep++ {
					for kind := Kind(0); kind < 3; kind++ {
						push(Event{Time: tt, Kind: kind, Job: job})
						job++
					}
				}
			}
		}
		for h.Len() > 0 {
			a, b := h.Pop(), c.Pop()
			if a != b {
				t.Fatalf("span %v: boundary tie diverged: heap %+v calendar %+v", span, a, b)
			}
		}
		if c.Len() != 0 {
			t.Fatalf("span %v: calendar holds %d leftover events", span, c.Len())
		}
	}
}

// TestCalendarSingleInstant: every event at one timestamp collapses the
// window to a degenerate span; pop order is pure (Kind, seq).
func TestCalendarSingleInstant(t *testing.T) {
	var h Queue
	var c Calendar
	for i := 0; i < 64; i++ {
		ev := Event{Time: 42, Kind: Kind(i % 3), Job: int32(i)}
		h.Push(ev)
		c.Push(ev)
	}
	for h.Len() > 0 {
		if a, b := h.Pop(), c.Pop(); a != b {
			t.Fatalf("single-instant tie diverged: heap %+v calendar %+v", a, b)
		}
	}
}

// TestCalendarSnapshotCrossImplementation freezes a partially drained run
// under each implementation and restores it under the other; both resumed
// queues (and post-restore pushes, which must tie-break against restored
// events via the preserved seq counter) must replay exactly the uninterrupted
// heap's tail. This is the bit-identical cross-impl resume contract.
func TestCalendarSnapshotCrossImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(150)
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{Time: float64(rng.Intn(10)), Kind: Kind(rng.Intn(3)), Job: int32(i), Machine: int32(rng.Intn(4))}
		}
		drained := rng.Intn(n)
		extra := make([]Event, rng.Intn(20))
		for i := range extra {
			extra[i] = Event{Time: float64(rng.Intn(10)), Kind: Kind(rng.Intn(3)), Job: int32(2000 + i)}
		}

		// Oracle: an uninterrupted heap.
		var oracle Queue
		for _, e := range events {
			oracle.Push(e)
		}
		for i := 0; i < drained; i++ {
			oracle.Pop()
		}
		for _, e := range extra {
			oracle.Push(e)
		}
		want := make([]Event, 0, oracle.Len())
		for oracle.Len() > 0 {
			want = append(want, oracle.Pop())
		}

		// heap→calendar and calendar→heap, mid-sequence.
		var h Queue
		var c Calendar
		for _, e := range events {
			h.Push(e)
			c.Push(e)
		}
		for i := 0; i < drained; i++ {
			h.Pop()
			c.Pop()
		}
		var fromHeap Calendar
		var fromCal Queue
		snapRoundTrip(t, &h, &fromHeap)
		snapRoundTrip(t, &c, &fromCal)
		for _, e := range extra {
			fromHeap.Push(e)
			fromCal.Push(e)
		}
		for k, w := range want {
			a := fromHeap.Pop()
			b := fromCal.Pop()
			if a != w {
				t.Fatalf("trial %d pop %d: heap→calendar resume diverged: got %+v want %+v", trial, k, a, w)
			}
			if b != w {
				t.Fatalf("trial %d pop %d: calendar→heap resume diverged: got %+v want %+v", trial, k, b, w)
			}
		}
		if fromHeap.Len() != 0 || fromCal.Len() != 0 {
			t.Fatalf("trial %d: leftovers after resume: %d / %d", trial, fromHeap.Len(), fromCal.Len())
		}
	}
}

// TestCalendarRestoreRejectsCorruptSemantics mirrors the heap's validation
// for the layout-independent checks (the calendar accepts any event order,
// so there is no heap-property case).
func TestCalendarRestoreRejectsCorruptSemantics(t *testing.T) {
	build := func(fill func(e *snapshot.Encoder)) *snapshot.Decoder {
		var buf bytes.Buffer
		w := snapshot.NewWriter(&buf)
		if err := w.Section("EVTQ", fill); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		d, err := r.Section("EVTQ")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	var c Calendar
	d := build(func(e *snapshot.Encoder) {
		e.U64(10)
		e.U64(1)
		e.F64(1)
		e.U64(7 << 56) // unknown kind
		e.U32(0)
		e.U32(^uint32(0))
		e.U32(0)
	})
	if err := c.Restore(d); err == nil {
		t.Fatal("unknown kind accepted")
	}
	d = build(func(e *snapshot.Encoder) {
		e.U64(2)
		e.U64(1)
		e.F64(1)
		e.U64(uint64(KindArrival)<<56 | 5) // seq 5 ≥ counter 2
		e.U32(0)
		e.U32(^uint32(0))
		e.U32(0)
	})
	c.Reset()
	if err := c.Restore(d); err == nil {
		t.Fatal("seq above counter accepted")
	}
}

// TestResetRetainsCapacityAndRestartsSeq covers the Reset contract of both
// implementations: emptied, seq back to zero (fresh-queue pop order), and no
// growth allocations on refill.
func TestResetRetainsCapacityAndRestartsSeq(t *testing.T) {
	impls := []struct {
		name string
		q    Interface
	}{
		{"heap", &Queue{}},
		{"calendar", &Calendar{}},
	}
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			fill := func() {
				for i := 0; i < 500; i++ {
					im.q.Push(Event{Time: float64(rng.Intn(20)), Kind: Kind(rng.Intn(3)), Job: int32(i)})
				}
			}
			fill()
			for i := 0; i < 100; i++ {
				im.q.Pop()
			}
			im.q.Reset()
			if im.q.Len() != 0 {
				t.Fatalf("Reset left %d events", im.q.Len())
			}
			// A reset queue must behave exactly like a fresh one: same-time
			// pushes pop in insertion order starting from seq 0.
			im.q.Push(Event{Time: 1, Kind: KindArrival, Job: 10})
			im.q.Push(Event{Time: 1, Kind: KindArrival, Job: 11})
			if e := im.q.Pop(); e.Job != 10 {
				t.Fatalf("post-Reset seq order broken: got job %d", e.Job)
			}
			im.q.Pop()
			// Refill must not allocate: capacity was retained.
			allocs := testing.AllocsPerRun(3, func() {
				im.q.Reset()
				for i := 0; i < 400; i++ {
					im.q.Push(Event{Time: float64(i % 20), Kind: KindArrival, Job: int32(i)})
				}
				for im.q.Len() > 0 {
					im.q.Pop()
				}
			})
			if allocs > 0 {
				t.Fatalf("refill after Reset allocated %.1f times per run", allocs)
			}
		})
	}
}

// FuzzCalendarVsHeap is the differential fuzz of the satellite task: an
// arbitrary operation stream (pushes with fuzzer-chosen times and kinds,
// pops, and a mid-sequence snapshot taken under one implementation and
// restored under the other) must produce identical pop sequences from both
// implementations.
func FuzzCalendarVsHeap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 5, 6, 255, 8, 9}, uint16(5), false)
	f.Add([]byte{10, 10, 10, 10, 10, 10, 255, 255}, uint16(2), true)
	f.Add([]byte{}, uint16(0), false)
	f.Fuzz(func(t *testing.T, ops []byte, snapAt uint16, snapUnderCalendar bool) {
		if len(ops) > 2048 {
			return
		}
		var h Queue
		var c Calendar
		step := 0
		for _, op := range ops {
			step++
			if op >= 200 && h.Len() > 0 {
				a, b := h.Pop(), c.Pop()
				if a != b {
					t.Fatalf("step %d: pop diverged: heap %+v calendar %+v", step, a, b)
				}
			} else {
				// Times from a coarse grid (op low bits scaled) so exact ties
				// are common; occasionally huge or fractional to stress window
				// geometry. Never NaN: the contract excludes it.
				tt := float64(op&63) * 0.25
				if op&64 != 0 {
					tt *= 1e6
				}
				ev := Event{Time: tt, Kind: Kind(op % 3), Job: int32(step)}
				h.Push(ev)
				c.Push(ev)
			}
			if step == int(snapAt) {
				// Freeze under one impl, resume BOTH from that snapshot — the
				// cross-impl restore must hand back exactly the same state.
				var buf bytes.Buffer
				w := snapshot.NewWriter(&buf)
				var serr error
				if snapUnderCalendar {
					serr = w.Section("EVTQ", func(e *snapshot.Encoder) { c.Snapshot(e) })
				} else {
					serr = w.Section("EVTQ", func(e *snapshot.Encoder) { h.Snapshot(e) })
				}
				if serr != nil || w.Close() != nil {
					t.Fatal("snapshot write failed")
				}
				restore := func(dst Interface) {
					r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					d, err := r.Section("EVTQ")
					if err != nil {
						t.Fatal(err)
					}
					if err := dst.Restore(d); err != nil {
						t.Fatalf("restore failed: %v", err)
					}
				}
				var nh Queue
				var nc Calendar
				restore(&nh)
				restore(&nc)
				h, c = nh, nc
			}
		}
		for h.Len() > 0 {
			a, b := h.Pop(), c.Pop()
			if a != b {
				t.Fatalf("drain: heap %+v calendar %+v", a, b)
			}
		}
		if c.Len() != 0 {
			t.Fatalf("calendar holds %d leftover events", c.Len())
		}
	})
}

// benchFill pushes a release-ordered stream with completion-style jitter —
// the engine's access pattern — and drains it, b.N events total.
func benchPushPop(b *testing.B, q Interface) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	q.Grow(1024)
	now := 0.0
	for i := 0; i < b.N; i++ {
		if q.Len() >= 1024 {
			e := q.Pop()
			if e.Time > now {
				now = e.Time
			}
			continue
		}
		// Arrivals march forward; completions land a bounded lead ahead.
		now += 0.01
		lead := rng.Float64() * 3
		q.Push(Event{Time: now + lead, Kind: Kind(rng.Intn(3)), Job: int32(i)})
	}
	for q.Len() > 0 {
		q.Pop()
	}
}

// BenchmarkCalendarPushPop is the gated calendar benchmark of the satellite
// task; BenchmarkHeapPushPop is its A/B partner on the identical stream.
func BenchmarkCalendarPushPop(b *testing.B) { benchPushPop(b, &Calendar{}) }

func BenchmarkHeapPushPop(b *testing.B) { benchPushPop(b, &Queue{}) }
