// Package eventq provides the deterministic event priority queue that drives
// the online event loops of every scheduler in this repository.
//
// Events are ordered by (Time, Kind, Seq): earlier times first, then by kind
// (so that, e.g., completions at time t are handled before arrivals at t),
// then by insertion sequence for full determinism. Stale events — completion
// events for executions that were interrupted by a rejection — are handled by
// the callers via version counters carried in the payload.
package eventq

import "container/heap"

// Kind orders simultaneous events. Lower kinds pop first.
type Kind int

const (
	// KindCompletion fires when a machine finishes its running job.
	KindCompletion Kind = iota
	// KindBookkeeping fires for internal accounting (e.g. a job leaving
	// the dual set V_i at its definitive-finish time).
	KindBookkeeping
	// KindArrival fires when a job is released.
	KindArrival
)

// Event is one timed occurrence. Payload fields are interpreted by callers.
type Event struct {
	Time    float64
	Kind    Kind
	Job     int // job id, or -1
	Machine int // machine index, or -1
	Version int // start-version guard for completion events

	seq int
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	ea, eb := h[a], h[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Kind != eb.Kind {
		return ea.Kind < eb.Kind
	}
	return ea.seq < eb.seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue is a deterministic min-heap of events. The zero value is ready to
// use.
type Queue struct {
	h   eventHeap
	seq int
}

// Push inserts an event.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// guard with Len.
func (q *Queue) Pop() Event { return heap.Pop(&q.h).(Event) }

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() Event { return q.h[0] }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }
