// Package eventq provides the deterministic event priority queue that drives
// the online event loops of every scheduler in this repository.
//
// Events are ordered by (Time, Kind, Seq): earlier times first, then by kind
// (so that, e.g., completions at time t are handled before arrivals at t),
// then by insertion sequence for full determinism. Stale events — completion
// events for executions that were interrupted by a rejection — are handled by
// the callers via version counters carried in the payload.
//
// The queue is a hand-rolled 4-ary min-heap: compared to container/heap it
// avoids the interface boxing that allocates on every Push, halves the sift
// depth, and keeps the hot comparison inlineable. Init heapifies an initial
// event batch in O(n).
package eventq

// Kind orders simultaneous events. Lower kinds pop first.
type Kind int8

const (
	// KindCompletion fires when a machine finishes its running job.
	KindCompletion Kind = iota
	// KindBookkeeping fires for internal accounting (e.g. a job leaving
	// the dual set V_i at its definitive-finish time).
	KindBookkeeping
	// KindArrival fires when a job is released.
	KindArrival
)

// Event is one timed occurrence. Payload fields are interpreted by callers.
// The struct is exactly 32 bytes so heap sifts move half as much memory as
// the naive int-field layout.
type Event struct {
	Time float64
	// ord packs (Kind, insertion sequence) into one word, so the tie-break
	// after Time is a single integer compare. Maintained by Push/Init.
	ord     uint64
	Job     int32 // job id or compact job index, or -1
	Machine int32 // machine index, or -1
	Version int32 // start-version guard for completion events
	Kind    Kind
}

// ordShift places Kind above the 56-bit insertion-sequence space.
const ordShift = 56

// less orders events by (Time, Kind, seq), the latter two via ord.
func less(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.ord < b.ord
}

// Queue is a deterministic min-heap of events. The zero value is ready to
// use.
type Queue struct {
	h   []Event
	seq uint64
}

// arity is the heap fan-out: child c of node i sits at i*arity+1+c.
const arity = 4

// Push inserts an event.
func (q *Queue) Push(e Event) {
	e.ord = uint64(e.Kind)<<ordShift | q.seq
	q.seq++
	q.h = append(q.h, e)
	q.siftUp(len(q.h) - 1)
}

// PushBatch inserts a batch of events, assigning insertion sequence in slice
// order, exactly as if each event had been pushed individually: the pop order
// of the queue is identical (it depends only on the (Time, Kind, seq) total
// order, never on heap layout). The slice is copied, not retained.
//
// It amortizes the capacity check over the batch and, when the queue is
// empty, heapifies bottom-up in O(n) instead of n sift-ups. The engine's
// FeedBatch deliberately does NOT use it: staging arrivals for a bulk push
// ran the dispatch of each arrival colder in cache than pushing and
// draining in small chunks (see engine.feedChunk), so PushBatch serves
// callers that already hold an event slice — e.g. seeding a queue from a
// precomputed schedule — not the session hot path.
func (q *Queue) PushBatch(events []Event) {
	q.Grow(len(events))
	if len(q.h) == 0 && len(events) > 2 {
		q.Init(events)
		return
	}
	for _, e := range events {
		e.ord = uint64(e.Kind)<<ordShift | q.seq
		q.seq++
		q.h = append(q.h, e)
		q.siftUp(len(q.h) - 1)
	}
}

// Init replaces the queue contents with the given batch, assigning insertion
// sequence in slice order and heapifying in O(n). The slice is copied, not
// retained.
func (q *Queue) Init(events []Event) {
	q.h = append(q.h[:0], events...)
	for i := range q.h {
		q.h[i].ord = uint64(q.h[i].Kind)<<ordShift | q.seq
		q.seq++
	}
	if len(q.h) < 2 {
		return // nothing to heapify; (0-2)/arity would also truncate to 0
	}
	for i := (len(q.h) - 2) / arity; i >= 0; i-- {
		q.siftDown(i)
	}
}

// Grow ensures capacity for n additional events without reallocation.
func (q *Queue) Grow(n int) {
	if free := cap(q.h) - len(q.h); free < n {
		nh := make([]Event, len(q.h), len(q.h)+n)
		copy(nh, q.h)
		q.h = nh
	}
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// guard with Len.
func (q *Queue) Pop() Event {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.h = h[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() Event { return q.h[0] }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Scan calls fn on every pending event in heap order (not pop order),
// stopping early when fn returns false. It exists for read-only audits of
// the backlog — e.g. the snapshot restore path bounds-checking event
// payloads — and must not be used to mutate events.
func (q *Queue) Scan(fn func(e *Event) bool) {
	for i := range q.h {
		if !fn(&q.h[i]) {
			return
		}
	}
}

func (q *Queue) siftUp(i int) {
	h := q.h
	e := h[i]
	for i > 0 {
		p := (i - 1) / arity
		if !less(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

func (q *Queue) siftDown(i int) {
	h := q.h
	n := len(h)
	e := h[i]
	for {
		c := i*arity + 1
		if c >= n {
			break
		}
		end := c + arity
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if !less(&h[m], &e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}
