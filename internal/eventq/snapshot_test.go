package eventq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// roundTrip snapshots q through a full container write/read cycle and
// restores into a fresh queue, failing the test on any container or decode
// error.
func roundTrip(t *testing.T, q *Queue) *Queue {
	t.Helper()
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	if err := w.Section("EVTQ", func(e *snapshot.Encoder) { q.Snapshot(e) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("EVTQ")
	if err != nil {
		t.Fatal(err)
	}
	var q2 Queue
	if err := q2.Restore(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	return &q2
}

// drainAll pops every event of q into a slice.
func drainAll(q *Queue) []Event {
	out := make([]Event, 0, q.Len())
	for q.Len() > 0 {
		out = append(out, q.Pop())
	}
	return out
}

// TestSnapshotRestorePopOrder is the round-trip equivalence test of the
// satellite task: a partially drained heap, snapshotted and restored, must
// pop the remaining events in exactly the order the original queue would
// have — including events tied on (Time, Kind) that only the preserved
// insertion sequence can order — and events pushed after the restore must
// interleave with restored ones exactly as post-snapshot pushes would have
// interleaved with the originals.
func TestSnapshotRestorePopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		n := 5 + rng.Intn(120)
		for i := 0; i < n; i++ {
			// Coarse times and all three kinds: plenty of exact ties, so the
			// ordering is decided by the insertion seq inside ord.
			q.Push(Event{
				Time:    float64(rng.Intn(8)),
				Kind:    Kind(rng.Intn(3)),
				Job:     int32(i),
				Machine: int32(rng.Intn(4)),
				Version: int32(rng.Intn(3)),
			})
		}
		// Partially drain, then snapshot mid-life.
		drained := rng.Intn(n)
		for i := 0; i < drained; i++ {
			q.Pop()
		}
		q2 := roundTrip(t, &q)

		// Post-snapshot pushes on both queues: the restored seq counter must
		// make them tie-break identically against the surviving events.
		extra := rng.Intn(20)
		for i := 0; i < extra; i++ {
			ev := Event{
				Time:    float64(rng.Intn(8)),
				Kind:    Kind(rng.Intn(3)),
				Job:     int32(1000 + i),
				Machine: int32(rng.Intn(4)),
			}
			q.Push(ev)
			q2.Push(ev)
		}

		got, want := drainAll(q2), drainAll(&q)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d events restored, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: pop %d diverges: restored %+v, original %+v", trial, k, got[k], want[k])
			}
		}
	}
}

// TestSnapshotRestoreEmptyAndTiny covers the degenerate sizes.
func TestSnapshotRestoreEmptyAndTiny(t *testing.T) {
	var q Queue
	q2 := roundTrip(t, &q)
	if q2.Len() != 0 {
		t.Fatalf("empty queue restored with %d events", q2.Len())
	}
	q.Push(Event{Time: 3, Kind: KindArrival, Job: 1, Machine: -1})
	q2 = roundTrip(t, &q)
	if q2.Len() != 1 || q2.Pop() != q.Pop() {
		t.Fatal("single-event queue did not round-trip")
	}
}

// TestRestoreRejectsCorruptSemantics hand-crafts payloads that pass the
// container layer but violate the queue invariants: unknown kinds, seqs at
// or above the restored counter, and heap-order violations must all fail
// with positioned errors.
func TestRestoreRejectsCorruptSemantics(t *testing.T) {
	cases := []struct {
		name string
		fill func(e *snapshot.Encoder)
		want string
	}{
		{
			name: "unknown kind",
			fill: func(e *snapshot.Encoder) {
				e.U64(10)         // seq counter
				e.U64(1)          // one event
				e.F64(1)          // time
				e.U64(7<<56 | 0)  // ord with kind 7
				e.U32(0)          // job
				e.U32(^uint32(0)) // machine -1
				e.U32(0)          // version
			},
			want: "unknown kind",
		},
		{
			name: "seq above counter",
			fill: func(e *snapshot.Encoder) {
				e.U64(2) // counter
				e.U64(1)
				e.F64(1)
				e.U64(uint64(KindArrival)<<56 | 5) // seq 5 ≥ counter 2
				e.U32(0)
				e.U32(^uint32(0))
				e.U32(0)
			},
			want: "at or above the queue counter",
		},
		{
			name: "heap violation",
			fill: func(e *snapshot.Encoder) {
				e.U64(10)
				e.U64(2)
				// Parent at time 5, child at time 1: not a heap.
				e.F64(5)
				e.U64(uint64(KindArrival)<<56 | 0)
				e.U32(0)
				e.U32(^uint32(0))
				e.U32(0)
				e.F64(1)
				e.U64(uint64(KindArrival)<<56 | 1)
				e.U32(1)
				e.U32(^uint32(0))
				e.U32(0)
			},
			want: "violates the heap order",
		},
		{
			name: "count beyond payload",
			fill: func(e *snapshot.Encoder) {
				e.U64(10)
				e.U64(1 << 40)
			},
			want: "exceeds the",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := snapshot.NewWriter(&buf)
			if err := w.Section("EVTQ", tc.fill); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			d, err := r.Section("EVTQ")
			if err != nil {
				t.Fatal(err)
			}
			var q Queue
			if err := q.Restore(d); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
