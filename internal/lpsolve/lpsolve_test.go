package lpsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkFeasible(t, p, s.X)
	return s
}

func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for _, v := range x {
		if v < -1e-7 {
			t.Fatalf("negative variable %v", v)
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, v := range c.Coef {
			lhs += v * x[j]
		}
		switch c.Rel {
		case LE:
			if lhs > c.B+1e-6*(1+math.Abs(c.B)) {
				t.Fatalf("constraint %d violated: %v > %v", i, lhs, c.B)
			}
		case GE:
			if lhs < c.B-1e-6*(1+math.Abs(c.B)) {
				t.Fatalf("constraint %d violated: %v < %v", i, lhs, c.B)
			}
		case EQ:
			if math.Abs(lhs-c.B) > 1e-6*(1+math.Abs(c.B)) {
				t.Fatalf("constraint %d violated: %v != %v", i, lhs, c.B)
			}
		}
	}
}

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6  →  min −x−y; optimum at (1.6, 1.2).
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coef: []float64{1, 2}, Rel: LE, B: 4},
			{Coef: []float64{3, 1}, Rel: LE, B: 6},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-2.8)) > 1e-6 {
		t.Fatalf("objective %v, want -2.8", s.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x ≥ 4  → x=10? y=0: but x+y=10, x≥4 → best all x: 2·10=20? no:
	// cost x is 2 < 3 so put everything on x: x=10,y=0 → 20.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, B: 10},
			{Coef: []float64{1, 0}, Rel: GE, B: 4},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Fatalf("objective %v, want 20", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: LE, B: 1},
			{Coef: []float64{1}, Rel: GE, B: 2},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, B: 1},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x ≥ 2 written as −x ≤ −2.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{-1}, Rel: LE, B: -2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-2) > 1e-6 {
		t.Fatalf("objective %v, want 2", s.Objective)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (cycles without an anti-cycling rule).
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coef: []float64{0.25, -60, -0.04, 9}, Rel: LE, B: 0},
			{Coef: []float64{0.5, -90, -0.02, 3}, Rel: LE, B: 0},
			{Coef: []float64{0, 0, 1, 0}, Rel: LE, B: 1},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective %v, want -0.05", s.Objective)
	}
}

func TestStrongDualityOnRandomLPs(t *testing.T) {
	// Primal: min c·x s.t. Ax ≥ b, x ≥ 0 (A,b,c > 0 ⇒ feasible & bounded).
	// Dual:   max b·y s.t. Aᵀy ≤ c, y ≥ 0 — solved as min −b·y.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		m := 2 + rng.Intn(5)
		a := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = 0.1 + rng.Float64()
			}
			b[i] = 0.5 + rng.Float64()*3
		}
		for j := range c {
			c[j] = 0.5 + rng.Float64()*2
		}
		primal := &Problem{NumVars: n, Objective: c}
		for i := 0; i < m; i++ {
			primal.Constraints = append(primal.Constraints, Constraint{Coef: a[i], Rel: GE, B: b[i]})
		}
		dualObj := make([]float64, m)
		for i := range dualObj {
			dualObj[i] = -b[i]
		}
		dual := &Problem{NumVars: m, Objective: dualObj}
		for j := 0; j < n; j++ {
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = a[i][j]
			}
			dual.Constraints = append(dual.Constraints, Constraint{Coef: col, Rel: LE, B: c[j]})
		}
		ps := solveOK(t, primal)
		ds := solveOK(t, dual)
		if math.Abs(ps.Objective-(-ds.Objective)) > 1e-5*(1+math.Abs(ps.Objective)) {
			t.Fatalf("trial %d: duality gap: primal %v, dual %v", trial, ps.Objective, -ds.Objective)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Fatal("accepted zero variables")
	}
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Fatal("accepted objective length mismatch")
	}
	if _, err := Solve(&Problem{NumVars: 1, Objective: []float64{1},
		Constraints: []Constraint{{Coef: []float64{1, 2}, Rel: LE, B: 1}}}); err == nil {
		t.Fatal("accepted constraint length mismatch")
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// The second constraint is the first times two: after phase 1 one
	// artificial stays basic at zero on the redundant row and must be
	// frozen, not declared infeasible.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, B: 1},
			{Coef: []float64{2, 2}, Rel: EQ, B: 2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-1) > 1e-6 { // all mass on the cheap variable
		t.Fatalf("objective %v, want 1", s.Objective)
	}
}

func TestInconsistentEqualityRows(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, B: 1},
			{Coef: []float64{2, 2}, Rel: EQ, B: 3},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestDegenerateEqualityZeroRHS(t *testing.T) {
	// x = 0 forces the variable out entirely.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coef: []float64{1, 0}, Rel: EQ, B: 0},
			{Coef: []float64{0, 1}, Rel: LE, B: 5},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-5)) > 1e-6 {
		t.Fatalf("objective %v, want -5", s.Objective)
	}
	if s.X[0] > 1e-9 {
		t.Fatalf("x0 = %v, want 0", s.X[0])
	}
}

func TestNoConstraints(t *testing.T) {
	// min x with x ≥ 0 and nothing else: optimum 0.
	s := solveOK(t, &Problem{NumVars: 1, Objective: []float64{1}})
	if s.Objective != 0 {
		t.Fatalf("objective %v, want 0", s.Objective)
	}
}
