package lpsolve

import (
	"math/rand"
	"testing"
)

func randomLP(nVars, nCons int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{NumVars: nVars, Objective: make([]float64, nVars)}
	for j := range p.Objective {
		p.Objective[j] = 0.5 + rng.Float64()
	}
	for i := 0; i < nCons; i++ {
		c := Constraint{Coef: make([]float64, nVars), Rel: GE, B: 1 + rng.Float64()*3}
		for j := range c.Coef {
			c.Coef[j] = 0.1 + rng.Float64()
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

func benchSolve(b *testing.B, nVars, nCons int) {
	p := randomLP(nVars, nCons, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve20x10(b *testing.B)  { benchSolve(b, 20, 10) }
func BenchmarkSolve100x40(b *testing.B) { benchSolve(b, 100, 40) }
func BenchmarkSolve300x80(b *testing.B) { benchSolve(b, 300, 80) }
