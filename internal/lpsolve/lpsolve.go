// Package lpsolve implements a dense two-phase primal simplex solver with
// Bland's anti-cycling rule. It is used to solve the paper's time-indexed LP
// relaxation of the flow-time problem exactly on small discretized instances,
// giving an honest lower bound on the offline optimum (the paper shows
// LP* ≤ 2·OPT).
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  A_i·x (≤ | = | ≥) b_i   for every constraint i
//	            x ≥ 0
//
// It is exact up to floating-point tolerance and intended for the problem
// sizes of the experiment harness (hundreds of variables), not for
// industrial LPs.
package lpsolve

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

// Constraint is one linear constraint Coef·x Rel B.
type Constraint struct {
	Coef []float64
	Rel  Rel
	B    float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// Solution is an optimal solution.
type Solution struct {
	X         []float64
	Objective float64
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lpsolve: infeasible")
	ErrUnbounded  = errors.New("lpsolve: unbounded")
	ErrIterations = errors.New("lpsolve: iteration limit exceeded")
)

const (
	tol     = 1e-9
	maxIter = 200000
)

type tableau struct {
	m, n  int         // constraint rows, total columns (structural+slack+artificial)
	a     [][]float64 // m rows × n cols
	b     []float64   // m
	basis []int       // basic variable per row
	nArt  int         // number of artificial columns (last nArt columns)
}

// Solve runs two-phase simplex and returns the optimal solution.
func Solve(p *Problem) (*Solution, error) {
	if err := check(p); err != nil {
		return nil, err
	}
	t := build(p)
	// Phase 1: minimize the sum of artificials.
	if t.nArt > 0 {
		c1 := make([]float64, t.n)
		for j := t.n - t.nArt; j < t.n; j++ {
			c1[j] = 1
		}
		v, err := t.optimize(c1)
		if err != nil {
			return nil, err
		}
		if v > 1e-6 {
			return nil, ErrInfeasible
		}
		if err := t.evictArtificials(); err != nil {
			return nil, err
		}
	}
	// Phase 2: original objective (artificial columns are frozen out).
	c2 := make([]float64, t.n)
	copy(c2, p.Objective)
	v, err := t.optimize(c2)
	if err != nil {
		return nil, err
	}
	x := make([]float64, p.NumVars)
	for r, j := range t.basis {
		if j < p.NumVars {
			x[j] = t.b[r]
		}
	}
	return &Solution{X: x, Objective: v}, nil
}

func check(p *Problem) error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lpsolve: NumVars = %d", p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lpsolve: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coef) != p.NumVars {
			return fmt.Errorf("lpsolve: constraint %d has %d coefficients, want %d", i, len(c.Coef), p.NumVars)
		}
	}
	return nil
}

// build converts to standard equality form with b ≥ 0 and an identity
// starting basis of slacks/artificials.
func build(p *Problem) *tableau {
	m := len(p.Constraints)
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		rel, b := c.Rel, c.B
		if b < 0 { // normalizing flips the relation
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := p.NumVars + nSlack + nArt
	t := &tableau{m: m, n: n, nArt: nArt,
		a: make([][]float64, m), b: make([]float64, m), basis: make([]int, m)}
	slack := p.NumVars
	art := p.NumVars + nSlack
	for i, c := range p.Constraints {
		row := make([]float64, n)
		sign := 1.0
		rel, b := c.Rel, c.B
		if b < 0 {
			sign, b = -1, -b
			rel = flip(rel)
		}
		for j, v := range c.Coef {
			row[j] = sign * v
		}
		switch rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
		t.b[i] = b
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// optimize runs primal simplex for min c·x from the current basis. Artificial
// columns are never allowed to re-enter once phase 1 finished (callers pass
// c with zero cost there; evictArtificials zeroes their columns).
func (t *tableau) optimize(c []float64) (float64, error) {
	// y = c_B per row; reduced cost of column j: c_j − Σ_r y_r a_rj.
	for iter := 0; iter < maxIter; iter++ {
		cb := make([]float64, t.m)
		for r, j := range t.basis {
			cb[r] = c[j]
		}
		// Bland: entering = smallest column index with reduced cost < −tol.
		enter := -1
		for j := 0; j < t.n; j++ {
			rc := c[j]
			for r := 0; r < t.m; r++ {
				rc -= cb[r] * t.a[r][j]
			}
			if rc < -tol {
				if isBasic(t.basis, j) {
					continue
				}
				enter = j
				break
			}
		}
		if enter == -1 {
			var obj float64
			for r, j := range t.basis {
				obj += c[j] * t.b[r]
			}
			return obj, nil
		}
		// Ratio test (Bland tie-break on basis variable index).
		leave, best := -1, math.Inf(1)
		for r := 0; r < t.m; r++ {
			if t.a[r][enter] > tol {
				ratio := t.b[r] / t.a[r][enter]
				if ratio < best-tol || (ratio < best+tol && (leave == -1 || t.basis[r] < t.basis[leave])) {
					leave, best = r, ratio
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return 0, ErrIterations
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

func (t *tableau) pivot(r, j int) {
	pv := t.a[r][j]
	for k := 0; k < t.n; k++ {
		t.a[r][k] /= pv
	}
	t.b[r] /= pv
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][j]
		if f == 0 {
			continue
		}
		for k := 0; k < t.n; k++ {
			t.a[i][k] -= f * t.a[r][k]
		}
		t.b[i] -= f * t.b[r]
	}
	t.basis[r] = j
}

// evictArtificials pivots basic artificials out (or confirms their rows are
// redundant) and removes artificial columns from further consideration.
func (t *tableau) evictArtificials() error {
	artStart := t.n - t.nArt
	for r := 0; r < t.m; r++ {
		if t.basis[r] < artStart {
			continue
		}
		// Try to pivot in any non-artificial column with nonzero coefficient.
		done := false
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[r][j]) > tol && !isBasic(t.basis, j) {
				t.pivot(r, j)
				done = true
				break
			}
		}
		if !done && math.Abs(t.b[r]) > 1e-6 {
			return ErrInfeasible
		}
		// Otherwise the row is redundant; the artificial stays basic at 0.
	}
	// Freeze artificial columns so they can never re-enter.
	for r := 0; r < t.m; r++ {
		for j := artStart; j < t.n; j++ {
			if t.basis[r] != j {
				t.a[r][j] = 0
			}
		}
	}
	return nil
}
