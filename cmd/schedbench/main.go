// Command schedbench regenerates the tables and figures of EXPERIMENTS.md.
//
// Usage:
//
//	schedbench -list                 # list the experiment suite
//	schedbench -exp E1               # run one experiment
//	schedbench -exp all              # run the whole suite
//	schedbench -exp E1 -quick        # scaled-down sizes (CI smoke run)
//	schedbench -exp E16 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The -cpuprofile / -memprofile flags write pprof profiles of the selected
// experiment run (`go tool pprof <file>`), so perf work can grab profiles
// without instrumenting code.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() { os.Exit(realMain()) }

// realMain carries the exit code back to main so deferred cleanup — the CPU
// profile stop and the heap profile write — always runs; os.Exit inside the
// body would silently truncate the profiles.
func realMain() int {
	var (
		exp     = flag.String("exp", "all", "experiment id (E1..E20) or 'all'")
		quick   = flag.Bool("quick", false, "run scaled-down instances")
		list    = flag.Bool("list", false, "list experiments and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "schedbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the live heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "schedbench:", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %-6s %s\n       claim: %s\n", e.ID, e.Kind, e.Title, e.Claim)
		}
		return 0
	}
	cfg := bench.Config{Quick: *quick}
	run := func(e bench.Experiment) error {
		out, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if c, ok := out.(interface{ CSV() string }); ok {
				fmt.Printf("# %s %s\n%s\n", e.ID, e.Title, c.CSV())
				return nil
			}
		}
		fmt.Println(out)
		return nil
	}
	if *exp == "all" {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "schedbench:", err)
				return 1
			}
		}
		return 0
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "schedbench: unknown experiment %q (try -list)\n", *exp)
		return 2
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		return 1
	}
	return 0
}
