// Command schedbench regenerates the tables and figures of EXPERIMENTS.md.
//
// Usage:
//
//	schedbench -list                 # list the experiment suite
//	schedbench -exp E1               # run one experiment
//	schedbench -exp all              # run the whole suite
//	schedbench -exp E1 -quick        # scaled-down sizes (CI smoke run)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (E1..E15) or 'all'")
		quick = flag.Bool("quick", false, "run scaled-down instances")
		list  = flag.Bool("list", false, "list experiments and exit")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %-6s %s\n       claim: %s\n", e.ID, e.Kind, e.Title, e.Claim)
		}
		return
	}
	cfg := bench.Config{Quick: *quick}
	run := func(e bench.Experiment) error {
		out, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if c, ok := out.(interface{ CSV() string }); ok {
				fmt.Printf("# %s %s\n%s\n", e.ID, e.Title, c.CSV())
				return nil
			}
		}
		fmt.Println(out)
		return nil
	}
	if *exp == "all" {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "schedbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "schedbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
