// Command schedserve is the network front door of the scheduling engine: a
// streaming HTTP server that ingests NDJSON job streams from concurrent
// tenants, multiplexes them deterministically onto an engine.Shard fleet,
// and survives overload and faults by construction (see internal/front).
//
// Usage:
//
//	schedserve -listen :8080 -policy flowtime -eps 0.2 -machines 8 -shards 4
//	schedserve -listen :8080 -throttle-depth 2048 -reject-depth 8192 -adm-eps 0.2
//	schedserve -listen :8080 -checkpoint serve.snap -checkpoint-every 50000
//	schedserve -listen :8080 -checkpoint serve.ck -checkpoint-every 50000 \
//	           -checkpoint-deltas 8 -checkpoint-keep 3   # delta lineage mode
//	schedserve -listen :8080 -resume serve.snap               # after a crash
//	schedserve -listen :8080 -stall-every 64 -stall-delay 2ms # fault injection
//
// Wire protocol (reference client: internal/chaos.Client, load driver:
// cmd/loadgen):
//
//	POST /v1/feed?tenant=T   NDJSON jobs in, NDJSON acks out (streaming)
//	POST /v1/drain           drain the fleet, respond with the final report
//	POST /v1/resize?shards=K crash-safe fleet resize (see internal/front)
//	GET  /v1/stats           live counters
//	GET  /healthz            readiness
//
// With -debug-addr a second listener serves the observability surface,
// kept off the ingest address so a scrape or profile can never compete
// with feed traffic for the accept queue:
//
//	GET /metrics             Prometheus text exposition (internal/obs)
//	GET /debug/vars          the same registry as expvar-style JSON
//	GET /debug/pprof/...     net/http/pprof (profile, heap, trace, ...)
//
// With -checkpoint-deltas/-checkpoint-keep the checkpoint path becomes a
// delta lineage (base.N.full / base.N.delta plus a base.lineage manifest);
// -resume detects a lineage at the path automatically and self-heals from
// torn or bit-flipped members by falling back along the chain.
//
// SIGTERM or SIGINT drains gracefully: live streams are refused and aborted,
// queued jobs get their verdicts, the fleet quiesces, a final checkpoint is
// written when -checkpoint is set, and the deterministic report lands on
// stdout. A SIGKILLed server instead resumes from its last periodic
// checkpoint via -resume; clients replay their streams (duplicates ack as
// dups) and the final report converges to the uninterrupted run's.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/chaos"
	"repro/internal/front"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		policy   = flag.String("policy", "flowtime", "flowtime|wflow|speedscale|srpt|wsrpt")
		eps      = flag.Float64("eps", 0.2, "scheduler rejection parameter ε")
		alpha    = flag.Float64("alpha", 0, "power exponent (speedscale)")
		machines = flag.Int("machines", 8, "machines per shard session")
		shards   = flag.Int("shards", 1, "scheduler shard count")
		sizeHint = flag.Int("size-hint", 0, "expected total jobs across all streams (preallocation hint, 0 grows on demand)")
		eventq   = flag.String("eventq", "", "engine event-queue implementation: heap|calendar (empty: heap; performance-only)")

		throttleDepth = flag.Int("throttle-depth", 0, "depth watermark: accept → throttle (0 disables)")
		rejectDepth   = flag.Int("reject-depth", 0, "depth watermark: throttle → pre-reject (0 disables)")
		resumeDepth   = flag.Int("resume-depth", 0, "hysteresis floor back to accept (0: half the low watermark)")
		admEps        = flag.Float64("adm-eps", 0, "per-tenant pre-rejection budget rate (ε·fed weight)")
		admBurst      = flag.Float64("adm-burst", 0, "initial per-tenant pre-rejection allowance (weight)")
		maxQueuedW    = flag.Float64("max-queued-weight", 0, "per-tenant queued-weight cap (0: unlimited)")

		queueDepth    = flag.Int("queue-depth", 256, "per-stream sequencer queue depth (jobs)")
		awaitTenants  = flag.Int("await-tenants", 0, "hold the merge until this many tenants connect")
		readTimeout   = flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline on feed connections")
		throttleDelay = flag.Duration("throttle-delay", time.Millisecond, "per-job intake delay while throttling")

		ckpt       = flag.String("checkpoint", "", "write durable snapshots to this file")
		ckptN      = flag.Int("checkpoint-every", 0, "checkpoint every N fed jobs (0: final drain only)")
		ckptDeltas = flag.Int("checkpoint-deltas", 0, "lineage mode: up to N delta checkpoints between fulls (0: single-file snapshots)")
		ckptKeep   = flag.Int("checkpoint-keep", 0, "lineage mode: retain only the newest N full generations (0: keep all)")
		resume     = flag.String("resume", "", "restore the server from this snapshot (or checkpoint lineage) before serving")

		stallEvery    = flag.Int("stall-every", 0, "fault injection: stall each shard feeder every N jobs (0 disables)")
		stallDelay    = flag.Duration("stall-delay", 0, "fault injection: stall duration")
		crashAtResize = flag.String("crash-at-resize", "", "fault injection: exit 137 at this resize point (pre|mid|post)")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty disables telemetry)")
		progress  = flag.Duration("progress", 0, "print a periodic status line to stderr (0 disables; needs -debug-addr)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
	}

	cfg := front.Config{
		Policy:     *policy,
		Epsilon:    *eps,
		Alpha:      *alpha,
		Machines:   *machines,
		Shards:     *shards,
		SizeHint:   *sizeHint,
		EventQueue: *eventq,
		Admission: admission.Config{
			ThrottleDepth:   *throttleDepth,
			RejectDepth:     *rejectDepth,
			ResumeDepth:     *resumeDepth,
			Epsilon:         *admEps,
			Burst:           *admBurst,
			MaxQueuedWeight: *maxQueuedW,
		},
		QueueDepth:      *queueDepth,
		AwaitTenants:    *awaitTenants,
		ReadTimeout:     *readTimeout,
		ThrottleDelay:   *throttleDelay,
		CheckpointPath:   *ckpt,
		CheckpointEvery:  *ckptN,
		CheckpointDeltas: *ckptDeltas,
		CheckpointKeep:   *ckptKeep,
		Stall:            chaos.Stall{Every: *stallEvery, Delay: *stallDelay},
		CrashAtResize:    *crashAtResize,
		Obs:              reg,
	}

	var (
		srv *front.Server
		err error
	)
	if *resume != "" {
		if snapshot.LineageExists(*resume) {
			// The path names a checkpoint lineage: recover the newest intact
			// payload, falling back along the chain past torn or corrupt
			// members, and restore from the reassembled bytes.
			payload, info, rerr := snapshot.RecoverLineage(*resume)
			if rerr != nil {
				fatal(rerr)
			}
			if info.FellBack {
				fmt.Fprintf(os.Stderr, "schedserve: lineage fell back to seq %d (%d newer checkpoints dropped as corrupt)\n",
					info.Seq, info.Dropped)
			}
			if reg != nil {
				// Seed the recovery counters so the first scrape already tells
				// the story of how this process came back.
				if info.FellBack {
					reg.Counter("lineage_fallbacks_total").Inc()
				}
				reg.Counter("lineage_dropped_total").Add(int64(info.Dropped))
				reg.Counter("lineage_deltas_applied_total").Add(int64(info.Applied))
				reg.Gauge("lineage_recovered_seq").Set(float64(info.Seq))
			}
			srv, err = front.Restore(cfg, bytes.NewReader(payload))
		} else {
			f, ferr := os.Open(*resume)
			if ferr != nil {
				fatal(ferr)
			}
			srv, err = front.Restore(cfg, f)
			f.Close()
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "schedserve: resumed from %s: %d fed, %d pre-rejected\n",
				*resume, srv.Stats().Fed, srv.Stats().PreRejected)
		}
	} else {
		srv, err = front.New(cfg)
	}
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "schedserve: %s ε=%v on %s (m=%d × %d shards)\n",
		*policy, *eps, *listen, *machines, *shards)

	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{Addr: *debugAddr, Handler: debugMux(reg)}
		go func() {
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "schedserve: debug listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "schedserve: telemetry on %s (/metrics, /debug/vars, /debug/pprof)\n", *debugAddr)
	}
	stopProgress := make(chan struct{})
	if *progress > 0 && reg != nil {
		go progressLoop(reg, srv, *progress, stopProgress)
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpDone:
		fatal(err) // the listener died out from under us
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "schedserve: %v, draining\n", sig)
	}

	// Graceful drain: the front door refuses new streams, finishes verdicts,
	// quiesces the fleet, writes the final checkpoint, and the report goes to
	// stdout — then the HTTP listener closes.
	close(stopProgress)
	rep, err := srv.Drain()
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if ds != nil {
		ds.Shutdown(ctx)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// debugMux assembles the observability surface: the obs registry as
// Prometheus text and expvar-style JSON, plus net/http/pprof. Explicit
// pprof routes (not http.DefaultServeMux) keep the profiling surface
// off the ingest listener.
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// progressLoop prints one status line per interval from the registry's
// counters — fed/shed totals, events per second, sequencer busy
// fraction — until stopped.
func progressLoop(reg *obs.Registry, srv *front.Server, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	fed := reg.Counter("front_fed_total")
	shed := reg.Counter("front_prerejected_total")
	events := reg.Counter("engine_events_total")
	busy := reg.Counter("front_sequencer_busy_ns_total")
	lastEvents, lastBusy := int64(0), int64(0)
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			wall := now.Sub(last)
			ev, bz := events.Value(), busy.Value()
			st := srv.Stats()
			fmt.Fprintf(os.Stderr, "schedserve: progress fed=%d shed=%d depth=%d events/s=%.0f busy=%.2f state=%s\n",
				fed.Value(), shed.Value(), st.Depth,
				float64(ev-lastEvents)/wall.Seconds(),
				float64(bz-lastBusy)/float64(wall), st.State)
			lastEvents, lastBusy, last = ev, bz, now
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedserve:", err)
	os.Exit(1)
}
