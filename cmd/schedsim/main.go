// Command schedsim runs one scheduling policy on a JSON trace (produced by
// cmd/tracegen) and reports the audited metrics.
//
// Usage:
//
//	schedsim -policy flowtime -eps 0.2 trace.json
//	schedsim -policy wflow -eps 0.2 -parallel 4 trace.json
//	schedsim -policy speedscale -eps 0.3 -alpha 2 trace.json
//	schedsim -policy energymin deadline.json
//	schedsim -policy greedy trace.json
//	schedsim -policy flowtime -eps 0.2 -dump out.json trace.json
//
// With -stream the trace is NDJSON (produced by tracegen -ndjson) and is
// consumed incrementally — from a file or stdin ("-" or no argument) —
// feeding each job into a streaming scheduler session at read time, never
// materializing the instance. Only the session-backed policies (flowtime,
// wflow, speedscale) support this mode:
//
//	tracegen -ndjson -n 100000 | schedsim -stream -policy flowtime -eps 0.2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/baseline"
	"repro/internal/core/energymin"
	"repro/internal/core/flowtime"
	"repro/internal/core/speedscale"
	"repro/internal/core/wflow"
	"repro/internal/engine"
	"repro/internal/gantt"
	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		policy   = flag.String("policy", "flowtime", "flowtime|wflow|speedscale|energymin|avr|greedy|fcfs|leastloaded|speedaug|immediate")
		eps      = flag.Float64("eps", 0.2, "rejection parameter ε")
		alpha    = flag.Float64("alpha", 0, "power exponent override (0: use trace)")
		epsS     = flag.Float64("epsS", 0.2, "speed augmentation (speedaug)")
		parallel = flag.Int("parallel", 0, "dispatch worker count for the λ-dispatch policies (0: auto, 1: sequential)")
		stream   = flag.Bool("stream", false, "consume an NDJSON trace incrementally (file or stdin)")
		dump     = flag.String("dump", "", "write the outcome JSON to this file")
		showG    = flag.Bool("gantt", false, "print an ASCII machine timeline")
	)
	flag.Parse()
	if *stream {
		if flag.NArg() > 1 {
			fmt.Fprintln(os.Stderr, "usage: schedsim -stream [flags] [trace.ndjson|-]")
			os.Exit(2)
		}
		if *showG {
			fmt.Fprintln(os.Stderr, "schedsim: -gantt needs the full instance and does not combine with -stream")
			os.Exit(2)
		}
		runStream(*policy, *eps, *alpha, *parallel, flag.Arg(0), *dump)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: schedsim [flags] trace.json")
		os.Exit(2)
	}
	ins, err := trace.LoadInstance(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var out *sched.Outcome
	mode := sched.ValidateMode{}
	switch *policy {
	case "flowtime":
		res, err := flowtime.Run(ins, flowtime.Options{Epsilon: *eps, ParallelDispatch: *parallel})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.RequireUnitSpeed = true
	case "wflow":
		res, err := wflow.Run(ins, wflow.Options{Epsilon: *eps, ParallelDispatch: *parallel})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.RequireUnitSpeed = true
	case "speedscale":
		res, err := speedscale.Run(ins, speedscale.Options{Epsilon: *eps, Alpha: *alpha, ParallelDispatch: *parallel})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
	case "energymin", "avr":
		res, err := energymin.Run(ins, energymin.Options{Alpha: *alpha, FullWindowOnly: *policy == "avr"})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.AllowParallel = true
		mode.RequireDeadlines = true
	case "greedy":
		out, err = baseline.GreedySPT(ins)
	case "fcfs":
		out, err = baseline.FCFS(ins)
	case "leastloaded":
		out, err = baseline.LeastLoaded(ins)
	case "speedaug":
		out, err = baseline.SpeedAugmented(ins, *epsS, *eps)
	case "immediate":
		out, err = baseline.ImmediateReject(ins, *eps, 3)
	default:
		fmt.Fprintf(os.Stderr, "schedsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if err := sched.ValidateOutcome(ins, out, mode); err != nil {
		fatal(fmt.Errorf("outcome failed audit: %w", err))
	}
	m, err := sched.ComputeMetrics(ins, out)
	if err != nil {
		fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("schedsim: %s on %s (n=%d, m=%d)", *policy, flag.Arg(0), len(ins.Jobs), ins.Machines),
		"metric", "value")
	t.AddRowf("total flow", m.TotalFlow)
	t.AddRowf("weighted flow", m.WeightedFlow)
	if ins.Alpha > 0 {
		t.AddRowf("energy", m.Energy)
		t.AddRowf("wflow+energy", m.WeightedFlowPlusEnergy())
	}
	t.AddRowf("mean flow", m.MeanFlow)
	t.AddRowf("p99 flow", m.P99Flow)
	t.AddRowf("max flow", m.MaxFlow)
	t.AddRowf("completed", m.Completed)
	t.AddRowf("rejected", m.Rejected)
	t.AddRowf("rejected weight", m.RejectedWeight)
	t.AddRowf("makespan", m.Makespan)
	t.AddRowf("LB Σ min p", lowerbound.MinProcSum(ins))
	t.AddRowf("LB pooled SRPT", lowerbound.SRPTBound(ins))
	fmt.Println(t)

	if *showG {
		fmt.Print(gantt.Render(ins, out, 100, 0))
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteOutcome(f, out); err != nil {
			fatal(err)
		}
	}
}

// jobFact is the per-job footprint kept for metrics in stream mode: the
// scheduler itself never sees an instance, only the fed jobs.
type jobFact struct {
	id      int
	release float64
	weight  float64
}

// runStream consumes an NDJSON trace incrementally and feeds a streaming
// scheduler session, then reports flow metrics computed from the outcome
// and the O(1)-per-job facts logged at feed time. A non-empty dump path
// receives the outcome JSON, as in batch mode.
func runStream(policy string, eps, alpha float64, parallel int, path, dump string) {
	in := io.Reader(os.Stdin)
	name := "stdin"
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = path
	}
	r, err := trace.NewNDJSONReader(in)
	if err != nil {
		fatal(err)
	}

	var (
		fd     engine.Feeder
		finish func() (*sched.Outcome, error)
	)
	switch policy {
	case "flowtime":
		s, err := flowtime.NewSession(r.Machines(), flowtime.Options{Epsilon: eps, ParallelDispatch: parallel})
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	case "wflow":
		s, err := wflow.NewSession(r.Machines(), wflow.Options{Epsilon: eps, ParallelDispatch: parallel})
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	case "speedscale":
		a := alpha
		if a == 0 {
			a = r.Alpha()
		}
		s, err := speedscale.NewSession(r.Machines(), speedscale.Options{Epsilon: eps, Alpha: a, ParallelDispatch: parallel})
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "schedsim: policy %q does not support -stream (use flowtime|wflow|speedscale)\n", policy)
		os.Exit(2)
	}

	var facts []jobFact
	for {
		j, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := fd.Feed(j); err != nil {
			fatal(err)
		}
		facts = append(facts, jobFact{id: j.ID, release: j.Release, weight: j.Weight})
	}
	out, err := finish()
	if err != nil {
		fatal(err)
	}

	var (
		totalFlow, weightedFlow, maxFlow float64
		rejectedWeight, makespan         float64
	)
	for _, f := range facts {
		c, ok := out.Completed[f.id]
		if !ok {
			c = out.Rejected[f.id]
			rejectedWeight += f.weight
		}
		fl := c - f.release
		totalFlow += fl
		weightedFlow += f.weight * fl
		if fl > maxFlow {
			maxFlow = fl
		}
	}
	for _, iv := range out.Intervals {
		if iv.End > makespan {
			makespan = iv.End
		}
	}

	t := stats.NewTable(fmt.Sprintf("schedsim: %s streaming %s (n=%d, m=%d)", policy, name, len(facts), r.Machines()),
		"metric", "value")
	t.AddRowf("total flow", totalFlow)
	t.AddRowf("weighted flow", weightedFlow)
	if len(facts) > 0 {
		t.AddRowf("mean flow", totalFlow/float64(len(facts)))
	}
	t.AddRowf("max flow", maxFlow)
	t.AddRowf("completed", len(out.Completed))
	t.AddRowf("rejected", len(out.Rejected))
	t.AddRowf("rejected weight", rejectedWeight)
	t.AddRowf("makespan", makespan)
	fmt.Println(t)

	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteOutcome(f, out); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedsim:", err)
	os.Exit(1)
}
