// Command schedsim runs one scheduling policy on a JSON trace (produced by
// cmd/tracegen) and reports the audited metrics.
//
// Usage:
//
//	schedsim -policy flowtime -eps 0.2 trace.json
//	schedsim -policy wflow -eps 0.2 -parallel 4 trace.json
//	schedsim -policy speedscale -eps 0.3 -alpha 2 trace.json
//	schedsim -policy srpt trace.json
//	schedsim -policy energymin deadline.json
//	schedsim -policy greedy trace.json
//	schedsim -policy flowtime -eps 0.2 -dump out.json trace.json
//
// With -stream the trace is NDJSON (produced by tracegen -ndjson) and is
// consumed incrementally — from a file or stdin ("-" or no argument) —
// feeding jobs into a streaming scheduler session at read time, never
// materializing the instance. Ingestion is batched: slabs of -batch jobs
// (default 256) move through one FeedBatch call each, which is observably
// identical to per-job feeding but amortizes the per-job overhead; -batch 1
// selects the per-job Feed path. Only the session-backed policies (flowtime,
// wflow, speedscale, srpt, wsrpt) support this mode:
//
//	tracegen -ndjson -n 100000 | schedsim -stream -policy flowtime -eps 0.2
//	tracegen -ndjson -n 100000 | schedsim -stream -batch 1024 -policy srpt
//
// Streaming sessions checkpoint and resume (see internal/snapshot and
// DESIGN.md): -checkpoint FILE -checkpoint-every N atomically rewrites FILE
// with a durable snapshot of the live session every N fed jobs (at batch
// boundaries); SIGINT or SIGTERM mid-stream also writes a final checkpoint
// to -checkpoint before exiting nonzero (status 3), so an orchestrator's
// shutdown is a resumable event rather than lost work; -stop-after N stops
// feeding after about N jobs, writes a
// final checkpoint and exits without a report, modeling a killed process;
// -resume FILE reconstructs the session from a snapshot and replays the
// trace, skipping the jobs the snapshot already absorbed — the final report
// is bit-identical to an uninterrupted run over the same trace:
//
//	schedsim -stream -policy flowtime -eps 0.2 -checkpoint ck.snap -checkpoint-every 50000 big.ndjson
//	schedsim -stream -policy flowtime -eps 0.2 -checkpoint ck.snap -stop-after 300000 big.ndjson
//	schedsim -stream -policy flowtime -eps 0.2 -resume ck.snap big.ndjson
//
// With -compare the chosen non-preemptive policy (flowtime or wflow), its
// preemptive engine-hosted counterpart (srpt or migratory wsrpt) and the
// pooled preemptive SRPT lower bound all run on the same instance, and the
// report adds the empirical "price of non-preemption" — the ratio of the
// non-preemptive cost to the preemptive one on the matching objective:
//
//	schedsim -compare -policy flowtime -eps 0.2 trace.json
//	schedsim -compare -policy wflow -eps 0.2 trace.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/baseline"
	"repro/internal/core/energymin"
	"repro/internal/core/flowtime"
	"repro/internal/core/speedscale"
	"repro/internal/core/srpt"
	"repro/internal/core/wflow"
	"repro/internal/engine"
	"repro/internal/gantt"
	"repro/internal/lowerbound"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		policy   = flag.String("policy", "flowtime", "flowtime|wflow|speedscale|srpt|wsrpt|energymin|avr|greedy|fcfs|leastloaded|speedaug|immediate")
		eps      = flag.Float64("eps", 0.2, "rejection parameter ε")
		alpha    = flag.Float64("alpha", 0, "power exponent override (0: use trace)")
		epsS     = flag.Float64("epsS", 0.2, "speed augmentation (speedaug)")
		parallel = flag.Int("parallel", 0, "dispatch worker count for the λ-dispatch policies (0: auto, 1: sequential)")
		eventq   = flag.String("eventq", "", "engine event-queue implementation for the session-backed policies: heap|calendar (empty: heap; performance-only)")
		stream   = flag.Bool("stream", false, "consume an NDJSON trace incrementally (file or stdin)")
		batch    = flag.Int("batch", 256, "stream ingestion batch size (1: per-job Feed path)")
		ckpt     = flag.String("checkpoint", "", "stream mode: write session snapshots to this file")
		ckptN    = flag.Int("checkpoint-every", 0, "stream mode: rewrite -checkpoint every N fed jobs")
		ckptD    = flag.Int("checkpoint-deltas", 0, "stream mode: lineage checkpoints, up to N deltas between fulls (0: single-file)")
		ckptK    = flag.Int("checkpoint-keep", 0, "stream mode: lineage retention, newest N full generations (0: keep all)")
		stopN    = flag.Int("stop-after", 0, "stream mode: stop after about N jobs, write a final -checkpoint, exit without a report")
		resume   = flag.String("resume", "", "stream mode: restore the session from this snapshot and skip the jobs it already absorbed")
		compare  = flag.Bool("compare", false, "run the policy, its preemptive counterpart and the SRPT bound on the same instance")
		dump     = flag.String("dump", "", "write the outcome JSON to this file")
		progress = flag.Duration("progress", 0, "stream mode: print a periodic status line (jobs fed, pending, events/s, checkpoint seq) to stderr (0 disables)")
		showG    = flag.Bool("gantt", false, "print an ASCII machine timeline")
	)
	flag.Parse()
	if *compare {
		if *stream {
			fmt.Fprintln(os.Stderr, "schedsim: -compare needs the full instance and does not combine with -stream")
			os.Exit(2)
		}
		if *dump != "" || *showG {
			fmt.Fprintln(os.Stderr, "schedsim: -compare runs several schedulers and does not combine with -dump or -gantt")
			os.Exit(2)
		}
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: schedsim -compare [-policy flowtime|wflow] [flags] trace.json")
			os.Exit(2)
		}
		runCompare(*policy, *eps, *parallel, flag.Arg(0))
		return
	}
	if *stream {
		if flag.NArg() > 1 {
			fmt.Fprintln(os.Stderr, "usage: schedsim -stream [flags] [trace.ndjson|-]")
			os.Exit(2)
		}
		if *showG {
			fmt.Fprintln(os.Stderr, "schedsim: -gantt needs the full instance and does not combine with -stream")
			os.Exit(2)
		}
		if (*ckptN > 0 || *stopN > 0 || *ckptD > 0 || *ckptK > 0) && *ckpt == "" {
			fmt.Fprintln(os.Stderr, "schedsim: -checkpoint-every/-checkpoint-deltas/-checkpoint-keep/-stop-after need -checkpoint FILE")
			os.Exit(2)
		}
		runStream(*policy, *eps, *alpha, *parallel, *batch, *eventq, flag.Arg(0), *dump, *progress,
			streamCheckpoints{File: *ckpt, Every: *ckptN, Deltas: *ckptD, Keep: *ckptK, StopAfter: *stopN, Resume: *resume})
		return
	}
	if *ckpt != "" || *ckptN > 0 || *ckptD > 0 || *ckptK > 0 || *stopN > 0 || *resume != "" {
		fmt.Fprintln(os.Stderr, "schedsim: -checkpoint/-checkpoint-every/-stop-after/-resume only apply to -stream")
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: schedsim [flags] trace.json")
		os.Exit(2)
	}
	ins, err := trace.LoadInstance(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var out *sched.Outcome
	mode := sched.ValidateMode{}
	switch *policy {
	case "flowtime":
		res, err := flowtime.Run(ins, flowtime.Options{Epsilon: *eps, ParallelDispatch: *parallel, EventQueue: *eventq})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.RequireUnitSpeed = true
	case "wflow":
		res, err := wflow.Run(ins, wflow.Options{Epsilon: *eps, ParallelDispatch: *parallel, EventQueue: *eventq})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.RequireUnitSpeed = true
	case "speedscale":
		res, err := speedscale.Run(ins, speedscale.Options{Epsilon: *eps, Alpha: *alpha, ParallelDispatch: *parallel, EventQueue: *eventq})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
	case "srpt":
		res, err := srpt.Run(ins, srpt.Options{ParallelDispatch: *parallel, EventQueue: *eventq})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.AllowPreemption = true
		mode.RequireUnitSpeed = true
	case "wsrpt":
		res, err := srpt.RunWeighted(ins, srpt.WeightedOptions{EventQueue: *eventq})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.AllowMigration = true
		mode.RequireUnitSpeed = true
	case "energymin", "avr":
		res, err := energymin.Run(ins, energymin.Options{Alpha: *alpha, FullWindowOnly: *policy == "avr"})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.AllowParallel = true
		mode.RequireDeadlines = true
	case "greedy":
		out, err = baseline.GreedySPT(ins)
	case "fcfs":
		out, err = baseline.FCFS(ins)
	case "leastloaded":
		out, err = baseline.LeastLoaded(ins)
	case "speedaug":
		out, err = baseline.SpeedAugmented(ins, *epsS, *eps)
	case "immediate":
		out, err = baseline.ImmediateReject(ins, *eps, 3)
	default:
		fmt.Fprintf(os.Stderr, "schedsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if err := sched.ValidateOutcome(ins, out, mode); err != nil {
		fatal(fmt.Errorf("outcome failed audit: %w", err))
	}
	m, err := sched.ComputeMetrics(ins, out)
	if err != nil {
		fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("schedsim: %s on %s (n=%d, m=%d)", *policy, flag.Arg(0), len(ins.Jobs), ins.Machines),
		"metric", "value")
	t.AddRowf("total flow", m.TotalFlow)
	t.AddRowf("weighted flow", m.WeightedFlow)
	if ins.Alpha > 0 {
		t.AddRowf("energy", m.Energy)
		t.AddRowf("wflow+energy", m.WeightedFlowPlusEnergy())
	}
	t.AddRowf("mean flow", m.MeanFlow)
	t.AddRowf("p99 flow", m.P99Flow)
	t.AddRowf("max flow", m.MaxFlow)
	t.AddRowf("completed", m.Completed)
	t.AddRowf("rejected", m.Rejected)
	t.AddRowf("rejected weight", m.RejectedWeight)
	t.AddRowf("makespan", m.Makespan)
	t.AddRowf("LB Σ min p", lowerbound.MinProcSum(ins))
	t.AddRowf("LB pooled SRPT", lowerbound.SRPTBound(ins))
	fmt.Println(t)

	if *showG {
		fmt.Print(gantt.Render(ins, out, 100, 0))
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteOutcome(f, out); err != nil {
			fatal(err)
		}
	}
}

// jobFact is the per-job footprint kept for metrics in stream mode: the
// scheduler itself never sees an instance, only the fed jobs.
type jobFact struct {
	id      int
	release float64
	weight  float64
}

// streamSession is what the checkpointing stream loop needs of a scheduler
// session: batched feeding, freezing to a durable snapshot, and the count of
// jobs already absorbed (which, on a resumed session, is the number of trace
// jobs to skip).
type streamSession interface {
	engine.BatchFeeder
	Snapshot(w io.Writer) error
	Fed() int
	SetTelemetry(t engine.Telemetry)
}

// streamCheckpoints carries the checkpoint/resume configuration of a
// streaming run.
type streamCheckpoints struct {
	File      string // snapshot path ("" disables checkpointing)
	Every     int    // rewrite File every this many fed jobs (0: only on StopAfter)
	Deltas    int    // lineage mode: up to this many delta checkpoints between fulls
	Keep      int    // lineage mode: retain only the newest N full generations
	StopAfter int    // stop feeding after about N jobs (0: run to EOF)
	Resume    string // snapshot or lineage to restore the session from ("" starts fresh)
}

// lineageMode reports whether File names a checkpoint lineage rather than a
// single rewritten snapshot file.
func (ck streamCheckpoints) lineageMode() bool {
	return ck.File != "" && (ck.Deltas > 0 || ck.Keep > 0)
}

// runStream consumes an NDJSON trace incrementally and feeds a streaming
// scheduler session — in slabs of `batch` jobs through the FeedBatch fast
// path (batch ≤ 1 selects the per-job Feed path) — then reports flow
// metrics computed from the outcome and the O(1)-per-job facts logged at
// feed time. A non-empty dump path receives the outcome JSON, as in batch
// mode.
//
// With ck.Resume the session is reconstructed from a snapshot and the trace
// replays from the top, logging facts but skipping the session.Fed() jobs
// the snapshot already absorbed; with ck.File the live session is frozen to
// disk every ck.Every fed jobs (and before a ck.StopAfter exit), each
// snapshot written to a temp file, fsynced and renamed into place so a crash
// mid-checkpoint never corrupts the previous one.
// streamProgress prints one status line per tick to stderr — plus a
// final one on stop, so even a run shorter than the interval leaves a
// trace — reading only the obs registry (atomics), never the session.
// events/s is the delta of engine_events_total over the window, and
// pending is derived (fed − completed − rejected), clamped at zero
// against the unsynchronized reads racing the feeder.
func streamProgress(reg *obs.Registry, every time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var (
		fed       = reg.Counter("engine_jobs_fed_total")
		completed = reg.Counter("engine_jobs_completed_total")
		rejected  = reg.Counter("engine_jobs_rejected_total")
		events    = reg.Counter("engine_events_total")
		seq       = reg.Gauge("schedsim_checkpoint_seq")
	)
	lastEvents := int64(0)
	last := time.Now()
	emit := func(now time.Time) {
		f := fed.Value()
		pending := f - completed.Value() - rejected.Value()
		if pending < 0 {
			pending = 0
		}
		ev := events.Value()
		rate := float64(ev-lastEvents) / now.Sub(last).Seconds()
		if rate < 0 || now.Sub(last) <= 0 {
			rate = 0
		}
		lastEvents, last = ev, now
		fmt.Fprintf(os.Stderr, "schedsim: progress fed=%d pending=%d events/s=%.0f ckpt_seq=%d\n",
			f, pending, rate, int64(seq.Value()))
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			emit(time.Now())
			return
		case now := <-t.C:
			emit(now)
		}
	}
}

func runStream(policy string, eps, alpha float64, parallel, batch int, eventq, path, dump string, progress time.Duration, ck streamCheckpoints) {
	in := io.Reader(os.Stdin)
	name := "stdin"
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = path
	}
	r, err := trace.NewNDJSONReader(in)
	if err != nil {
		fatal(err)
	}

	var resumeFrom io.ReadCloser
	if ck.Resume != "" {
		if snapshot.LineageExists(ck.Resume) {
			payload, info, err := snapshot.RecoverLineage(ck.Resume)
			if err != nil {
				fatal(err)
			}
			if info.FellBack {
				fmt.Fprintf(os.Stderr, "schedsim: lineage fell back to seq %d (%d newer checkpoints dropped as corrupt)\n",
					info.Seq, info.Dropped)
			}
			resumeFrom = io.NopCloser(bytes.NewReader(payload))
		} else {
			f, err := os.Open(ck.Resume)
			if err != nil {
				fatal(err)
			}
			resumeFrom = f
		}
	}

	var (
		fd     streamSession
		finish func() (*sched.Outcome, error)
	)
	switch policy {
	case "flowtime":
		opt := flowtime.Options{Epsilon: eps, ParallelDispatch: parallel, SizeHint: r.Jobs(), EventQueue: eventq}
		var s *flowtime.Session
		var err error
		if resumeFrom != nil {
			s, err = flowtime.Restore(resumeFrom, opt)
		} else {
			s, err = flowtime.NewSession(r.Machines(), opt)
		}
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	case "wflow":
		opt := wflow.Options{Epsilon: eps, ParallelDispatch: parallel, SizeHint: r.Jobs(), EventQueue: eventq}
		var s *wflow.Session
		var err error
		if resumeFrom != nil {
			s, err = wflow.Restore(resumeFrom, opt)
		} else {
			s, err = wflow.NewSession(r.Machines(), opt)
		}
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	case "speedscale":
		a := alpha
		if a == 0 {
			a = r.Alpha()
		}
		opt := speedscale.Options{Epsilon: eps, Alpha: a, ParallelDispatch: parallel, SizeHint: r.Jobs(), EventQueue: eventq}
		var s *speedscale.Session
		var err error
		if resumeFrom != nil {
			s, err = speedscale.Restore(resumeFrom, opt)
		} else {
			s, err = speedscale.NewSession(r.Machines(), opt)
		}
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	case "srpt":
		opt := srpt.Options{ParallelDispatch: parallel, SizeHint: r.Jobs(), EventQueue: eventq}
		var s *srpt.Session
		var err error
		if resumeFrom != nil {
			s, err = srpt.Restore(resumeFrom, opt)
		} else {
			s, err = srpt.NewSession(r.Machines(), opt)
		}
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	case "wsrpt":
		var s *srpt.WeightedSession
		var err error
		if resumeFrom != nil {
			s, err = srpt.RestoreWeighted(resumeFrom, srpt.WeightedOptions{EventQueue: eventq})
		} else {
			s, err = srpt.NewWeightedSession(r.Machines(), srpt.WeightedOptions{SizeHint: r.Jobs(), EventQueue: eventq})
		}
		if err != nil {
			fatal(err)
		}
		fd = s
		finish = func() (*sched.Outcome, error) {
			res, err := s.Close()
			if err != nil {
				return nil, err
			}
			return res.Outcome, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "schedsim: policy %q does not support -stream (use flowtime|wflow|speedscale|srpt|wsrpt)\n", policy)
		os.Exit(2)
	}
	if resumeFrom != nil {
		resumeFrom.Close()
	}

	// -progress wires the session to a private obs registry and prints a
	// periodic status line from its counters. The ticker goroutine never
	// touches the session itself (sessions are not goroutine-safe):
	// pending is derived as fed − completed − rejected, and the
	// checkpoint sequence comes from a gauge set by save() below.
	var ckptSeq *obs.Gauge
	if progress > 0 {
		reg := obs.NewRegistry()
		fd.SetTelemetry(engine.NewTelemetry(reg, ""))
		ckptSeq = reg.Gauge("schedsim_checkpoint_seq")
		stopProgress := make(chan struct{})
		progressDone := make(chan struct{})
		go streamProgress(reg, progress, stopProgress, progressDone)
		defer func() {
			close(stopProgress)
			<-progressDone // the final status line must land before exit
		}()
	}

	// save freezes the session durably: single-file mode rewrites ck.File
	// atomically; lineage mode appends a full or delta checkpoint to the
	// chain. force pins a full — the final checkpoint of an interrupted or
	// stopped run is a recovery anchor, never a delta.
	var lin *snapshot.Lineage
	if ck.lineageMode() {
		var err error
		lin, err = snapshot.OpenLineage(ck.File, snapshot.LineageOptions{Keep: ck.Keep, DeltaEvery: ck.Deltas})
		if err != nil {
			fatal(err)
		}
	}
	saveN := 0
	save := func(force bool) error {
		if lin == nil {
			if err := writeCheckpoint(ck.File, fd); err != nil {
				return err
			}
			saveN++
			ckptSeq.Set(float64(saveN))
			return nil
		}
		var buf bytes.Buffer
		if err := fd.Snapshot(&buf); err != nil {
			return fmt.Errorf("writing checkpoint: %w", err)
		}
		entry, err := lin.Write(buf.Bytes(), force)
		if err != nil {
			return err
		}
		ckptSeq.Set(float64(entry.Seq))
		return nil
	}

	var facts []jobFact
	skip := fd.Fed() // jobs the restored snapshot already absorbed
	fedHere := 0     // jobs fed by this process
	sinceCkpt := 0
	stopped := false

	// SIGINT/SIGTERM land between slabs: the current slab finishes feeding,
	// a final checkpoint (if -checkpoint is set) freezes the session, and the
	// process exits nonzero — the report is the survivor's job, via -resume.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigC)
	interrupted := func() bool {
		select {
		case sig := <-sigC:
			if ck.File != "" {
				if err := save(true); err != nil {
					fatal(fmt.Errorf("checkpoint on %v: %w", sig, err))
				}
				fmt.Fprintf(os.Stderr, "schedsim: %v after %d jobs (%d absorbed in total), checkpoint at %s\n",
					sig, fedHere, fd.Fed(), ck.File)
			} else {
				fmt.Fprintf(os.Stderr, "schedsim: %v after %d jobs, no -checkpoint to save to\n", sig, fedHere)
			}
			os.Exit(3)
			return true
		default:
			return false
		}
	}

	// ingest logs facts for every trace job, skips the prefix a resumed
	// session already holds, feeds the rest, and handles the periodic
	// checkpoint and the stop-after cutoff at slab granularity.
	ingest := func(slab []sched.Job) {
		for k := range slab {
			facts = append(facts, jobFact{id: slab[k].ID, release: slab[k].Release, weight: slab[k].Weight})
		}
		if skip >= len(slab) {
			skip -= len(slab)
			return
		}
		slab = slab[skip:]
		skip = 0
		if err := fd.FeedBatch(slab); err != nil {
			fatal(err)
		}
		fedHere += len(slab)
		sinceCkpt += len(slab)
		if ck.File != "" && ck.Every > 0 && sinceCkpt >= ck.Every {
			if err := save(false); err != nil {
				fatal(err)
			}
			sinceCkpt = 0
		}
		if ck.StopAfter > 0 && fedHere >= ck.StopAfter {
			if ck.File != "" {
				if err := save(true); err != nil {
					fatal(err)
				}
			}
			fmt.Fprintf(os.Stderr, "schedsim: stopped after %d jobs (%d absorbed in total), checkpoint at %s\n",
				fedHere, fd.Fed(), ck.File)
			stopped = true
		}
	}

	if batch <= 1 {
		one := make([]sched.Job, 1)
		for !stopped && !interrupted() {
			j, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			one[0] = j
			ingest(one)
		}
	} else {
		// Batched ingestion: decode a slab, feed it in one FeedBatch call,
		// reuse the slab. FeedBatch copies the jobs, so recycling the buffer
		// is safe; each job's Proc slice is freshly decoded and stays owned
		// by the session.
		slab := make([]sched.Job, 0, batch)
		for !stopped && !interrupted() {
			slab, err = r.NextBatch(slab[:0], batch)
			if err != nil && err != io.EOF {
				fatal(err)
			}
			ingest(slab)
			if err == io.EOF {
				break
			}
		}
	}
	if stopped {
		return // the checkpoint is the product; no report for a killed run
	}
	if skip > 0 {
		fatal(fmt.Errorf("snapshot absorbed %d more jobs than the trace provides — resuming against a different trace?", skip))
	}
	out, err := finish()
	if err != nil {
		fatal(err)
	}

	var (
		totalFlow, weightedFlow, maxFlow float64
		rejectedWeight, makespan         float64
	)
	for _, f := range facts {
		c, ok := out.Completed[f.id]
		if !ok {
			c = out.Rejected[f.id]
			rejectedWeight += f.weight
		}
		fl := c - f.release
		totalFlow += fl
		weightedFlow += f.weight * fl
		if fl > maxFlow {
			maxFlow = fl
		}
	}
	for _, iv := range out.Intervals {
		if iv.End > makespan {
			makespan = iv.End
		}
	}

	t := stats.NewTable(fmt.Sprintf("schedsim: %s streaming %s (n=%d, m=%d)", policy, name, len(facts), r.Machines()),
		"metric", "value")
	t.AddRowf("total flow", totalFlow)
	t.AddRowf("weighted flow", weightedFlow)
	if len(facts) > 0 {
		t.AddRowf("mean flow", totalFlow/float64(len(facts)))
	}
	t.AddRowf("max flow", maxFlow)
	t.AddRowf("completed", len(out.Completed))
	t.AddRowf("rejected", len(out.Rejected))
	t.AddRowf("rejected weight", rejectedWeight)
	t.AddRowf("makespan", makespan)
	fmt.Println(t)

	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteOutcome(f, out); err != nil {
			fatal(err)
		}
	}
}

// runCompare runs a non-preemptive policy, its preemptive engine-hosted
// counterpart and the pooled preemptive SRPT lower bound on the same
// instance: flowtime pairs with per-machine SRPT on total flow time, wflow
// with migratory weighted SRPT on weighted flow time. Every outcome is
// audited before its metrics count.
//
// Two headline ratios come out. The clean "price of non-preemption" divides
// non-preemptive greedy SPT (which, like the preemptive comparator, serves
// every job) by the preemptive cost — what the ability to preempt alone
// buys. The "rejection vs preemption" ratio divides the paper algorithm's
// cost by the preemptive cost; since its rejected jobs pay flow only until
// their rejection instant (the paper's accounting), this ratio can dip
// below 1 under overload — rejection substituting for preemption, the §1
// claim E15 quantifies across workload families.
func runCompare(policy string, eps float64, parallel int, path string) {
	ins, err := trace.LoadInstance(path)
	if err != nil {
		fatal(err)
	}

	var (
		nonName, preName string
		nonOut, preOut   *sched.Outcome
		preMode          sched.ValidateMode
		rejected         int
		preempt, migrate int
		objective        string
		costOf           func(sched.Metrics) float64
	)
	switch policy {
	case "flowtime":
		nonName, preName, objective = "flowtime (non-preemptive)", "srpt (preemptive)", "total flow"
		costOf = func(m sched.Metrics) float64 { return m.TotalFlow }
		nres, err := flowtime.Run(ins, flowtime.Options{Epsilon: eps, ParallelDispatch: parallel})
		if err != nil {
			fatal(err)
		}
		pres, err := srpt.Run(ins, srpt.Options{ParallelDispatch: parallel})
		if err != nil {
			fatal(err)
		}
		nonOut, preOut = nres.Outcome, pres.Outcome
		rejected, preempt = nres.Rule1Rejections+nres.Rule2Rejections, pres.Preemptions
		preMode = sched.ValidateMode{AllowPreemption: true, RequireUnitSpeed: true}
	case "wflow":
		nonName, preName, objective = "wflow (non-preemptive)", "wsrpt (preemptive, migratory)", "weighted flow"
		costOf = func(m sched.Metrics) float64 { return m.WeightedFlow }
		nres, err := wflow.Run(ins, wflow.Options{Epsilon: eps, ParallelDispatch: parallel})
		if err != nil {
			fatal(err)
		}
		pres, err := srpt.RunWeighted(ins, srpt.WeightedOptions{})
		if err != nil {
			fatal(err)
		}
		nonOut, preOut = nres.Outcome, pres.Outcome
		rejected, preempt, migrate = nres.Rule1Rejections+nres.Rule2Rejections, pres.Preemptions, pres.Migrations
		preMode = sched.ValidateMode{AllowMigration: true, RequireUnitSpeed: true}
	default:
		fmt.Fprintf(os.Stderr, "schedsim: -compare pairs flowtime or wflow with a preemptive counterpart, not %q\n", policy)
		os.Exit(2)
	}

	greedyOut, err := baseline.GreedySPT(ins)
	if err != nil {
		fatal(err)
	}
	if err := sched.ValidateOutcome(ins, nonOut, sched.ValidateMode{RequireUnitSpeed: true}); err != nil {
		fatal(fmt.Errorf("non-preemptive outcome failed audit: %w", err))
	}
	if err := sched.ValidateOutcome(ins, preOut, preMode); err != nil {
		fatal(fmt.Errorf("preemptive outcome failed audit: %w", err))
	}
	if err := sched.ValidateOutcome(ins, greedyOut, sched.ValidateMode{RequireUnitSpeed: true}); err != nil {
		fatal(fmt.Errorf("greedy outcome failed audit: %w", err))
	}
	nm, err := sched.ComputeMetrics(ins, nonOut)
	if err != nil {
		fatal(err)
	}
	pm, err := sched.ComputeMetrics(ins, preOut)
	if err != nil {
		fatal(err)
	}
	gm, err := sched.ComputeMetrics(ins, greedyOut)
	if err != nil {
		fatal(err)
	}
	nonCost, preCost, greedyCost := costOf(nm), costOf(pm), costOf(gm)
	bound := lowerbound.SRPTBound(ins)

	t := stats.NewTable(fmt.Sprintf("schedsim -compare: %s on %s (n=%d, m=%d, ε=%v)", policy, path, len(ins.Jobs), ins.Machines, eps),
		"metric", "value")
	t.AddRowf(fmt.Sprintf("%s %s", nonName, objective), nonCost)
	t.AddRowf(fmt.Sprintf("greedy SPT (non-preemptive, no rejections) %s", objective), greedyCost)
	t.AddRowf(fmt.Sprintf("%s %s", preName, objective), preCost)
	t.AddRowf("LB pooled SRPT (total flow)", bound)
	if preCost > 0 {
		t.AddRowf("price of non-preemption (greedy/preemptive)", greedyCost/preCost)
		t.AddRowf("rejection vs preemption (policy/preemptive)", nonCost/preCost)
	}
	// The pooled SRPT bound holds for total flow only, so the LB ratios are
	// always on total flow — even when the headline objective is weighted.
	if bound > 0 {
		t.AddRowf(fmt.Sprintf("%s total flow / LB", preName), pm.TotalFlow/bound)
		t.AddRowf(fmt.Sprintf("%s total flow / LB", nonName), nm.TotalFlow/bound)
	}
	t.AddRowf("rejected (non-preemptive)", rejected)
	t.AddRowf("preemptions", preempt)
	if policy == "wflow" {
		t.AddRowf("migrations", migrate)
	}
	fmt.Println(t)
}

// writeCheckpoint freezes the session into path atomically: the snapshot is
// written to a sibling temp file, fsynced, and renamed over path, so a crash
// mid-write leaves the previous checkpoint intact and a reader never sees a
// half-written file.
func writeCheckpoint(path string, s streamSession) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedsim:", err)
	os.Exit(1)
}
