// Command schedsim runs one scheduling policy on a JSON trace (produced by
// cmd/tracegen) and reports the audited metrics.
//
// Usage:
//
//	schedsim -policy flowtime -eps 0.2 trace.json
//	schedsim -policy speedscale -eps 0.3 -alpha 2 trace.json
//	schedsim -policy energymin deadline.json
//	schedsim -policy greedy trace.json
//	schedsim -policy flowtime -eps 0.2 -dump out.json trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core/energymin"
	"repro/internal/core/flowtime"
	"repro/internal/core/speedscale"
	"repro/internal/gantt"
	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		policy = flag.String("policy", "flowtime", "flowtime|speedscale|energymin|avr|greedy|fcfs|leastloaded|speedaug|immediate")
		eps    = flag.Float64("eps", 0.2, "rejection parameter ε")
		alpha  = flag.Float64("alpha", 0, "power exponent override (0: use trace)")
		epsS   = flag.Float64("epsS", 0.2, "speed augmentation (speedaug)")
		dump   = flag.String("dump", "", "write the outcome JSON to this file")
		showG  = flag.Bool("gantt", false, "print an ASCII machine timeline")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: schedsim [flags] trace.json")
		os.Exit(2)
	}
	ins, err := trace.LoadInstance(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var out *sched.Outcome
	mode := sched.ValidateMode{}
	switch *policy {
	case "flowtime":
		res, err := flowtime.Run(ins, flowtime.Options{Epsilon: *eps})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.RequireUnitSpeed = true
	case "speedscale":
		res, err := speedscale.Run(ins, speedscale.Options{Epsilon: *eps, Alpha: *alpha})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
	case "energymin", "avr":
		res, err := energymin.Run(ins, energymin.Options{Alpha: *alpha, FullWindowOnly: *policy == "avr"})
		if err != nil {
			fatal(err)
		}
		out = res.Outcome
		mode.AllowParallel = true
		mode.RequireDeadlines = true
	case "greedy":
		out, err = baseline.GreedySPT(ins)
	case "fcfs":
		out, err = baseline.FCFS(ins)
	case "leastloaded":
		out, err = baseline.LeastLoaded(ins)
	case "speedaug":
		out, err = baseline.SpeedAugmented(ins, *epsS, *eps)
	case "immediate":
		out, err = baseline.ImmediateReject(ins, *eps, 3)
	default:
		fmt.Fprintf(os.Stderr, "schedsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if err := sched.ValidateOutcome(ins, out, mode); err != nil {
		fatal(fmt.Errorf("outcome failed audit: %w", err))
	}
	m, err := sched.ComputeMetrics(ins, out)
	if err != nil {
		fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("schedsim: %s on %s (n=%d, m=%d)", *policy, flag.Arg(0), len(ins.Jobs), ins.Machines),
		"metric", "value")
	t.AddRowf("total flow", m.TotalFlow)
	t.AddRowf("weighted flow", m.WeightedFlow)
	if ins.Alpha > 0 {
		t.AddRowf("energy", m.Energy)
		t.AddRowf("wflow+energy", m.WeightedFlowPlusEnergy())
	}
	t.AddRowf("mean flow", m.MeanFlow)
	t.AddRowf("p99 flow", m.P99Flow)
	t.AddRowf("max flow", m.MaxFlow)
	t.AddRowf("completed", m.Completed)
	t.AddRowf("rejected", m.Rejected)
	t.AddRowf("rejected weight", m.RejectedWeight)
	t.AddRowf("makespan", m.Makespan)
	t.AddRowf("LB Σ min p", lowerbound.MinProcSum(ins))
	t.AddRowf("LB pooled SRPT", lowerbound.SRPTBound(ins))
	fmt.Println(t)

	if *showG {
		fmt.Print(gantt.Render(ins, out, 100, 0))
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteOutcome(f, out); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedsim:", err)
	os.Exit(1)
}
