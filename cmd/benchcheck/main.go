// Command benchcheck gates allocation regressions: it parses `go test
// -bench -benchmem` output from stdin, matches each benchmark against the
// allocs/op recorded in BENCH_baseline.json, and exits non-zero when any
// benchmark regresses beyond the threshold — the benchstat-style CI tripwire
// for the repository's hot paths, without a network dependency.
//
// allocs/op is the gated signal because it is hardware-independent (the
// event loops are allocation-free in steady state, so a new allocation in a
// hot path shows up verbatim); ns/op is reported but never gated — CI
// runners are too noisy for wall-clock assertions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 2x ./... |
//	    go run ./cmd/benchcheck -baseline BENCH_baseline.json
//
// A benchmark fails when its allocs/op exceeds baseline*(1+threshold)+slack
// (default 10% + 8 allocs of absolute grace, so near-zero baselines don't
// trip on one lazy-init allocation). Baseline entries missing from the
// input fail too — silently dropped coverage is itself a regression —
// unless -lenient downgrades them to warnings. Benchmarks absent from the
// baseline are listed as informational (candidates for the next baseline
// refresh).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the fields of BENCH_baseline.json that benchcheck
// consumes; unknown fields (notes, the E14/E16 snapshots) are ignored.
type baselineFile struct {
	Benchmarks []baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkRun10kJobs4Machines-8   168  7132243 ns/op  2679296 B/op  167 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against")
		threshold    = flag.Float64("threshold", 0.10, "fractional allocs/op regression that fails the check")
		slack        = flag.Float64("slack", 8, "absolute allocs/op grace on top of the threshold")
		lenient      = flag.Bool("lenient", false, "warn instead of failing on baseline benchmarks missing from the input")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	want := make(map[string]baselineEntry, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		want[b.Package+"."+b.Name] = b
	}

	type result struct {
		key    string
		ns     float64
		allocs float64
	}
	var results []result
	seen := make(map[string]bool)
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		r := result{key: pkg + "." + m[1], ns: ns, allocs: -1}
		if m[3] != "" {
			r.allocs, _ = strconv.ParseFloat(m[3], 64)
		}
		results = append(results, r)
		seen[r.key] = true
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	failed := false
	for _, r := range results {
		b, tracked := want[r.key]
		switch {
		case !tracked:
			fmt.Printf("  new    %-64s %8.0f allocs/op (not in baseline)\n", r.key, r.allocs)
		case r.allocs < 0:
			fmt.Printf("FAIL     %-64s ran without -benchmem, cannot gate\n", r.key)
			failed = true
		default:
			limit := b.AllocsPerOp*(1+*threshold) + *slack
			status, mark := "  ok   ", ""
			if r.allocs > limit {
				status, mark, failed = "FAIL   ", fmt.Sprintf("  (limit %.0f)", limit), true
			}
			fmt.Printf("%s %-64s %8.0f -> %-8.0f allocs/op  ns/op %.2gx%s\n",
				status, r.key, b.AllocsPerOp, r.allocs, r.ns/b.NsPerOp, mark)
		}
	}
	for key := range want {
		if !seen[key] {
			if *lenient {
				fmt.Printf("  warn   %-64s in baseline but not benchmarked this run\n", key)
			} else {
				fmt.Printf("FAIL     %-64s in baseline but not benchmarked this run\n", key)
				failed = true
			}
		}
	}
	if failed {
		fmt.Println("benchcheck: allocation regression (or lost coverage) against", *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%%+%.0f of %s\n",
		len(results), *threshold*100, *slack, *baselinePath)
}
