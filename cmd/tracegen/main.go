// Command tracegen generates workload instances as JSON traces for
// cmd/schedsim.
//
// Usage:
//
//	tracegen -n 500 -m 4 -seed 7 -kind uniform  > trace.json
//	tracegen -kind pareto -load 1.2             > heavy.json
//	tracegen -kind deadline -horizon 200        > deadline.json
//	tracegen -kind lemma1 -L 32                 > adversarial.json
//	tracegen -ndjson -n 100000                  > stream.ndjson
//
// With -ndjson the trace is written in the streaming NDJSON format
// consumed by schedsim -stream (one header line, then one job per line).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 500, "number of jobs")
		m        = flag.Int("m", 4, "number of machines")
		seed     = flag.Int64("seed", 1, "rng seed")
		kind     = flag.String("kind", "uniform", "uniform|pareto|bimodal|bursty|deadline|lemma1")
		load     = flag.Float64("load", 0.9, "offered load (arrival workloads)")
		weighted = flag.Bool("weighted", false, "draw job weights from [1,10]")
		alpha    = flag.Float64("alpha", 2, "power exponent (deadline workloads)")
		horizon  = flag.Int("horizon", 200, "slot horizon (deadline workloads)")
		slack    = flag.Float64("slack", 2, "deadline slack factor (deadline workloads)")
		l        = flag.Float64("L", 16, "big-job length (lemma1 workloads; Δ=L²)")
		eps      = flag.Float64("eps", 0.5, "epsilon (lemma1 workloads)")
		ndjson   = flag.Bool("ndjson", false, "write the streaming NDJSON format (for schedsim -stream)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var ins *sched.Instance
	switch *kind {
	case "uniform", "pareto", "bimodal", "bursty":
		cfg := workload.DefaultConfig(*n, *m, *seed)
		cfg.Load = *load
		cfg.Weighted = *weighted
		switch *kind {
		case "pareto":
			cfg.Sizes = workload.SizePareto
			cfg.MaxSize = 100
		case "bimodal":
			cfg.Sizes = workload.SizeBimodal
		case "bursty":
			cfg.Arrivals = workload.ArrivalsBursty
			cfg.BurstSize = 20
		}
		ins = workload.Random(cfg)
		ins.Alpha = *alpha
	case "deadline":
		ins = workload.RandomDeadline(workload.DeadlineConfig{
			N: *n, M: *m, Seed: *seed, Horizon: *horizon,
			MinVol: 1, MaxVol: 8, Slack: *slack, Alpha: *alpha,
		})
	case "lemma1":
		ins = workload.Lemma1Instance(*l, *eps)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	write := trace.WriteInstance
	if *ndjson {
		write = trace.WriteInstanceNDJSON
	}
	if err := write(w, ins); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
