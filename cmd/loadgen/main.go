// Command loadgen is the fault-injecting load driver for schedserve: it
// fans a synthetic multi-tenant workload out through retrying chaos clients
// (internal/chaos), optionally killing its own connections and truncating
// frames mid-batch, then drains the server and audits the final report
// against what the clients saw acknowledged.
//
// Usage:
//
//	loadgen -server http://127.0.0.1:8080 -tenants 4 -jobs 5000
//	loadgen -server ... -kills 2 -truncations 1 -window 500      # client faults
//	loadgen -server ... -drain -report-out report.json           # drain + audit
//	loadgen -server ... -no-feed -drain -report-out after.json   # drain only
//	loadgen -server ... -no-feed -resize-to 3                    # fleet resize
//	loadgen -server ... -id-base 10000 -release-base 1e6         # later phase
//
// Multi-phase runs across a resize boundary compose from these: phase one
// feeds, a -resize-to call regrows the fleet, phase two feeds with -id-base
// and -release-base lifted above phase one (distinct ids, releases past the
// merge watermark), and the final -drain audit checks conservation over both
// phases plus -expect-shards against the report's live count and history.
//
// With -drain the exit status is the audit: 0 only if the drained report
// balances — every submitted job fed or pre-rejected, every fed job
// completed or rejected, and each tenant's pre-rejected weight within its
// ε-scaled budget (the invariant of Lucarelli et al.'s rejection budget,
// applied at the admission boundary). The CI chaos smoke SIGKILLs schedserve
// under this driver, resumes it from its checkpoint, replays with a second
// loadgen run, and diffs -report-out files between the interrupted and
// straight-through universes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/chaos"
	"repro/internal/front"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		server   = flag.String("server", "http://127.0.0.1:8080", "schedserve base URL")
		tenants  = flag.Int("tenants", 4, "concurrent tenant streams")
		jobs     = flag.Int("jobs", 2000, "jobs per tenant")
		machines = flag.Int("machines", 8, "machine count (must match the server)")
		load     = flag.Float64("load", 1.2, "workload load factor")
		seed     = flag.Int64("seed", 7, "workload base seed (tenant t uses seed+t)")
		rate     = flag.Float64("rate", 0, "per-tenant pacing, jobs/sec (0: unpaced)")

		kills    = flag.Int("kills", 0, "per tenant: connections to kill mid-batch")
		truncs   = flag.Int("truncations", 0, "per tenant: frames to truncate")
		window   = flag.Int("window", 200, "inject each fault within this many jobs of stream start")
		attempts = flag.Int("max-attempts", 32, "per tenant: connection attempt budget")

		idBase   = flag.Int("id-base", 0, "add this to every tenant-local job id (later phases of a multi-phase run)")
		relBase  = flag.Float64("release-base", 0, "add this to every release time (lift a later phase past the merge watermark)")
		resizeTo = flag.Int("resize-to", 0, "after feeding, resize the server's shard fleet to this count (0: no resize)")

		scrape      = flag.String("scrape", "", "schedserve debug base URL (its -debug-addr): poll /metrics and print a live table while feeding")
		scrapeEvery = flag.Duration("scrape-every", time.Second, "live-table poll interval (requires -scrape)")

		wait      = flag.Duration("wait-ready", 10*time.Second, "poll /healthz this long before feeding")
		noFeed    = flag.Bool("no-feed", false, "skip feeding (use with -drain to audit a server fed earlier)")
		drain     = flag.Bool("drain", false, "drain the server afterwards and audit the final report")
		reportOut = flag.String("report-out", "", "write the drained report JSON here (requires -drain)")
		expShards = flag.Int("expect-shards", 0, "audit: the drained report must show this live shard count (requires -drain)")
		verbose   = flag.Bool("v", false, "log per-tenant progress")
	)
	flag.Parse()
	if *reportOut != "" && !*drain {
		fatal(fmt.Errorf("-report-out needs -drain"))
	}
	if *expShards > 0 && !*drain {
		fatal(fmt.Errorf("-expect-shards needs -drain"))
	}

	ctx := context.Background()
	if err := chaos.WaitReady(ctx, nil, *server, *wait); err != nil {
		fatal(err)
	}

	// The live table and the final-scrape audit both read the server's
	// telemetry via its -debug-addr /metrics endpoint.
	if *scrape != "" {
		if _, err := scrapeOnce(*scrape); err != nil {
			fatal(fmt.Errorf("-scrape: %w", err))
		}
	}

	var attemptsC, failuresC obs.Counter // fleet-wide retry accounting across tenants

	submitted := 0
	if !*noFeed {
		stopScrape := make(chan struct{})
		var scrapeDone sync.WaitGroup
		if *scrape != "" {
			scrapeDone.Add(1)
			go func() {
				defer scrapeDone.Done()
				liveTable(*scrape, *scrapeEvery, stopScrape)
			}()
		}

		var wg sync.WaitGroup
		results := make([]*chaos.Result, *tenants)
		errs := make([]error, *tenants)
		for t := 0; t < *tenants; t++ {
			c := workload.DefaultConfig(*jobs, *machines, *seed+int64(t))
			c.Load = *load
			trace := workload.Random(c).Jobs
			for k := range trace {
				trace[k].ID += *idBase
				trace[k].Release += *relBase
			}
			cl := &chaos.Client{
				Server:      *server,
				Tenant:      t,
				Machines:    *machines,
				MaxAttempts: *attempts,
				Rate:        *rate,
				Faults:      chaos.Faults{Kills: *kills, Truncations: *truncs, Window: *window},
				Seed:        uint64(*seed) + uint64(t)*0x9e3779b97f4a7c15,
				AttemptsC:   &attemptsC,
				FailuresC:   &failuresC,
			}
			if *verbose {
				tt := t
				cl.Log = func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "loadgen: tenant %d: %s\n", tt, fmt.Sprintf(format, args...))
				}
			}
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				results[t], errs[t] = cl.Run(ctx, trace)
			}(t)
		}
		wg.Wait()
		close(stopScrape)
		scrapeDone.Wait()
		for t, err := range errs {
			if err != nil {
				fatal(fmt.Errorf("tenant %d: %w", t, err))
			}
		}
		for t, res := range results {
			submitted += res.OK + res.Rejected + res.Dup
			line := fmt.Sprintf("loadgen: tenant %d: %d ok, %d rejected, %d dup in %d attempts (%d kills, %d truncations",
				t, res.OK, res.Rejected, res.Dup, res.Attempts, res.Kills, res.Truncations)
			if res.FailedAttempts > 0 {
				line += fmt.Sprintf(", %d failed — last: %s", res.FailedAttempts, res.LastErr)
			}
			fmt.Fprintln(os.Stderr, line+")")
		}
		if a, f := attemptsC.Value(), failuresC.Value(); f > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: retries: %d attempts, %d failed across %d tenants\n", a, f, *tenants)
		}
		if submitted != *tenants**jobs {
			fatal(fmt.Errorf("clients account for %d jobs, submitted %d", submitted, *tenants**jobs))
		}
	}

	if *resizeTo > 0 {
		raw, err := chaos.Resize(ctx, nil, *server, *resizeTo)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: resized: %s\n", bytes.TrimSpace(raw))
	}

	if !*drain {
		return
	}
	raw, err := chaos.Drain(ctx, nil, *server)
	if err != nil {
		fatal(err)
	}
	var rep front.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("decoding drained report: %w", err))
	}
	if *reportOut != "" {
		if err := os.WriteFile(*reportOut, raw, 0o644); err != nil {
			fatal(err)
		}
	}

	// The audit. Conservation against the client's own ledger runs only when
	// this process fed the jobs; the structural invariants always hold.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: AUDIT FAILED: %s\n", fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	if !*noFeed && rep.Fed+rep.PreRejected != submitted {
		fail("server decided %d jobs (%d fed + %d pre-rejected), clients submitted %d",
			rep.Fed+rep.PreRejected, rep.Fed, rep.PreRejected, submitted)
	}
	if rep.Completed+rep.Rejected != rep.Fed {
		fail("fed %d but completed %d + rejected %d — the fleet dropped jobs",
			rep.Fed, rep.Completed, rep.Rejected)
	}
	if *expShards > 0 && rep.Shards != *expShards {
		fail("report shows %d shards (history %v), expected %d", rep.Shards, rep.ShardHistory, *expShards)
	}
	if n := len(rep.ShardHistory); n == 0 || rep.ShardHistory[n-1] != rep.Shards {
		fail("shard history %v does not end at the live count %d", rep.ShardHistory, rep.Shards)
	}
	acfg := admission.Config{Epsilon: rep.AdmissionEpsilon, Burst: rep.AdmissionBurst}
	for _, tr := range rep.Tenants {
		ten := admission.Tenant{ID: tr.ID, Fed: tr.Fed, FedWeight: tr.FedWeight,
			PreRejected: tr.PreRejected, PreRejectedWeight: tr.PreRejectedWeight}
		if err := admission.BudgetInvariant(acfg, ten, 1e-9); err != nil {
			fail("%v", err)
		}
		if tr.Completed+tr.Rejected != tr.Fed {
			fail("tenant %d: fed %d but completed %d + rejected %d", tr.ID, tr.Fed, tr.Completed, tr.Rejected)
		}
	}
	// Telemetry-vs-report cross-check: a final scrape of the server's live
	// counters must agree with the drained report. A divergence means the
	// metrics pipeline is lying about the system it instruments.
	if *scrape != "" {
		sc, err := scrapeOnce(*scrape)
		if err != nil {
			fail("final scrape: %v", err)
		}
		for _, chk := range []struct {
			series string
			want   int
		}{
			{"front_fed_total", rep.Fed},
			{"front_prerejected_total", rep.PreRejected},
		} {
			if !sc.Has(chk.series) {
				fail("final scrape is missing %s", chk.series)
			}
			if got := int(sc.Value(chk.series)); got != chk.want {
				fail("scraped %s = %d, drained report says %d", chk.series, got, chk.want)
			}
		}
		fmt.Fprintf(os.Stderr, "loadgen: scrape audit ok: /metrics agrees with the drained report\n")
	}
	fmt.Fprintf(os.Stderr, "loadgen: audit ok: %d fed, %d pre-rejected, %d completed, %d rejected (weight %.6g)\n",
		rep.Fed, rep.PreRejected, rep.Completed, rep.Rejected, rep.RejectedWeight)
}

// scrapeOnce fetches and parses one /metrics exposition from the server's
// debug listener.
func scrapeOnce(base string) (obs.Scrape, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s/metrics: %s", base, resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// liveTable polls /metrics every tick and prints one compact status row:
// admitted and shed weight (the admission ledger), the p99 sequencer
// decide latency, and the sequencer busy fraction over the poll window
// (busy-ns delta over wall delta — the saturation signal; at 1.00 the
// single-threaded sequencer is the wall).
func liveTable(base string, every time.Duration, stop <-chan struct{}) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	fmt.Fprintf(os.Stderr, "loadgen: %10s %12s %12s %12s %6s\n", "fed", "admit_w", "shed_w", "decide_p99", "busy")
	var lastBusy float64
	last := time.Now()
	first := true
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			sc, err := scrapeOnce(base)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: scrape: %v\n", err)
				continue
			}
			busy := sc.Value("front_sequencer_busy_ns_total")
			frac := (busy - lastBusy) / float64(now.Sub(last))
			lastBusy, last = busy, now
			if first { // no window yet: show the since-start fraction instead
				frac = sc.Value("front_sequencer_busy_fraction")
				first = false
			}
			fmt.Fprintf(os.Stderr, "loadgen: %10.0f %12.1f %12.1f %10.2fms %6.2f\n",
				sc.Value("front_fed_total"),
				sc.Value("admission_fed_weight"),
				sc.Value("admission_tokens_spent_weight"),
				sc.Quantile("front_decide_ns", 0.99)/1e6,
				frac)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
