package repro

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core/flowtime"
	"repro/internal/core/speedscale"
	"repro/internal/core/srpt"
	"repro/internal/core/wflow"
	"repro/internal/sched"
	"repro/internal/workload"
)

// goldenSession is the slice of the five policies' session APIs the dense
// outcome goldens need: batched feeding, a mid-stream checkpoint, and a
// close that surfaces the Outcome.
type goldenSession interface {
	FeedBatch(jobs []sched.Job) error
}

// TestDenseOutcomeGoldens pins the dense outcome-recording path (the
// engine's flat state/when/machine arrays, materialized into Outcome maps at
// Close) across all five policies at once: a straight full-feed session is
// the golden, and both a batch-split feed — the job slice cut into several
// FeedBatch calls — and a kill-resume run — snapshot after the first cut,
// restore into a fresh session, feed the rest — must reproduce its Outcome
// bit-identically. The per-policy equivalence suites cover these paths in
// more depth individually; this test exists so a change to the shared
// recording path cannot pass by fixing one policy and regressing another.
func TestDenseOutcomeGoldens(t *testing.T) {
	const m = 4
	cfg := workload.DefaultConfig(600, m, 21)
	cfg.Load = 1.2
	cfg.Weighted = true
	ins := workload.Random(cfg)
	ins.Alpha = 2 // speedscale needs a power exponent; the others ignore it

	type harness struct {
		open    func() (goldenSession, func() (*sched.Outcome, error), func(io.Writer) error, error)
		restore func(io.Reader) (goldenSession, func() (*sched.Outcome, error), error)
	}
	policies := map[string]harness{
		"flowtime": {
			open: func() (goldenSession, func() (*sched.Outcome, error), func(io.Writer) error, error) {
				s, err := flowtime.NewSession(m, flowtime.Options{Epsilon: 0.2})
				if err != nil {
					return nil, nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, s.Snapshot, nil
			},
			restore: func(r io.Reader) (goldenSession, func() (*sched.Outcome, error), error) {
				s, err := flowtime.Restore(r, flowtime.Options{Epsilon: 0.2})
				if err != nil {
					return nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, nil
			},
		},
		"wflow": {
			open: func() (goldenSession, func() (*sched.Outcome, error), func(io.Writer) error, error) {
				s, err := wflow.NewSession(m, wflow.Options{Epsilon: 0.25})
				if err != nil {
					return nil, nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, s.Snapshot, nil
			},
			restore: func(r io.Reader) (goldenSession, func() (*sched.Outcome, error), error) {
				s, err := wflow.Restore(r, wflow.Options{Epsilon: 0.25})
				if err != nil {
					return nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, nil
			},
		},
		"speedscale": {
			open: func() (goldenSession, func() (*sched.Outcome, error), func(io.Writer) error, error) {
				s, err := speedscale.NewSession(m, speedscale.Options{Epsilon: 0.3, Alpha: 2})
				if err != nil {
					return nil, nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, s.Snapshot, nil
			},
			restore: func(r io.Reader) (goldenSession, func() (*sched.Outcome, error), error) {
				s, err := speedscale.Restore(r, speedscale.Options{Epsilon: 0.3, Alpha: 2})
				if err != nil {
					return nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, nil
			},
		},
		"srpt": {
			open: func() (goldenSession, func() (*sched.Outcome, error), func(io.Writer) error, error) {
				s, err := srpt.NewSession(m, srpt.Options{})
				if err != nil {
					return nil, nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, s.Snapshot, nil
			},
			restore: func(r io.Reader) (goldenSession, func() (*sched.Outcome, error), error) {
				s, err := srpt.Restore(r, srpt.Options{})
				if err != nil {
					return nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, nil
			},
		},
		"wsrpt": {
			open: func() (goldenSession, func() (*sched.Outcome, error), func(io.Writer) error, error) {
				s, err := srpt.NewWeightedSession(m, srpt.WeightedOptions{})
				if err != nil {
					return nil, nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, s.Snapshot, nil
			},
			restore: func(r io.Reader) (goldenSession, func() (*sched.Outcome, error), error) {
				s, err := srpt.RestoreWeighted(r, srpt.WeightedOptions{})
				if err != nil {
					return nil, nil, err
				}
				return s, func() (*sched.Outcome, error) {
					res, err := s.Close()
					if err != nil {
						return nil, err
					}
					return res.Outcome, nil
				}, nil
			},
		},
	}

	// Split points for the batch-split feed and the checkpoint cut; jobs are
	// release-sorted, so any slice boundary is a legal FeedBatch boundary.
	splits := []int{0, 113, 250, 251, 480, len(ins.Jobs)}

	for name, h := range policies {
		t.Run(name, func(t *testing.T) {
			// Golden: one session, one FeedBatch.
			s, closeFn, _, err := h.open()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.FeedBatch(ins.Jobs); err != nil {
				t.Fatal(err)
			}
			golden, err := closeFn()
			if err != nil {
				t.Fatal(err)
			}
			if len(golden.Completed)+len(golden.Rejected) != len(ins.Jobs) {
				t.Fatalf("golden accounts %d+%d jobs, want %d",
					len(golden.Completed), len(golden.Rejected), len(ins.Jobs))
			}

			// Batch-split: the same jobs across several FeedBatch calls.
			s, closeFn, _, err = h.open()
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(splits); i++ {
				if err := s.FeedBatch(ins.Jobs[splits[i-1]:splits[i]]); err != nil {
					t.Fatalf("split %d: %v", i, err)
				}
			}
			split, err := closeFn()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(golden, split) {
				t.Fatal("batch-split outcome diverges from the golden")
			}

			// Kill-resume: checkpoint mid-stream, restore, feed the rest.
			cut := splits[2]
			s, _, snap, err := h.open()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.FeedBatch(ins.Jobs[:cut]); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := snap(&buf); err != nil {
				t.Fatal(err)
			}
			rs, closeFn, err := h.restore(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := rs.FeedBatch(ins.Jobs[cut:]); err != nil {
				t.Fatal(err)
			}
			resumed, err := closeFn()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(golden, resumed) {
				t.Fatal("kill-resume outcome diverges from the golden")
			}
		})
	}
}
