package repro

// Cross-module integration tests: the full pipeline (generate → serialize →
// schedule → audit → measure → bound) and direct checks of the paper's
// theorem statements against exact optima on small instances.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core/energymin"
	"repro/internal/core/flowtime"
	"repro/internal/core/speedscale"
	"repro/internal/core/srpt"
	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTheorem1AgainstExactOPT is the sharpest end-to-end check in the repo:
// on instances small enough for exact brute force, the algorithm's total
// flow time never exceeds 2((1+ε)/ε)² times the true offline optimum.
func TestTheorem1AgainstExactOPT(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5} {
		bound := 2 * math.Pow((1+eps)/eps, 2)
		for seed := int64(0); seed < 20; seed++ {
			cfg := workload.DefaultConfig(7, 2, seed)
			cfg.MaxSize = 10
			cfg.Load = 1.2
			ins := workload.Random(cfg)
			res, err := flowtime.Run(ins, flowtime.Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			m, err := sched.ComputeMetrics(ins, res.Outcome)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := lowerbound.BruteForceFlow(ins)
			if err != nil {
				t.Fatal(err)
			}
			if m.TotalFlow > bound*opt+1e-9 {
				t.Fatalf("eps=%v seed=%d: flow %v > %v·OPT (OPT=%v): Theorem 1 violated",
					eps, seed, m.TotalFlow, bound, opt)
			}
		}
	}
}

// TestTheorem3AgainstExactOPT: the energy greedy never exceeds α^α times
// the exact discrete optimum on tiny instances.
func TestTheorem3AgainstExactOPT(t *testing.T) {
	for _, alpha := range []float64{1.5, 2, 3} {
		for seed := int64(0); seed < 8; seed++ {
			ins := workload.RandomDeadline(workload.DeadlineConfig{
				N: 3, M: 2, Seed: seed, Horizon: 7, MinVol: 1, MaxVol: 4, Slack: 2, Alpha: alpha,
			})
			res, err := energymin.Run(ins, energymin.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := lowerbound.BruteForceEnergy(ins, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Energy > energymin.TheoryRatio(alpha)*opt+1e-9 {
				t.Fatalf("α=%v seed=%d: greedy %v > α^α·OPT = %v: Theorem 3 violated",
					alpha, seed, res.Energy, energymin.TheoryRatio(alpha)*opt)
			}
		}
	}
}

// TestPipelineRoundTrip exercises generate → JSON → load → schedule with
// every policy → audit → metrics, all in memory.
func TestPipelineRoundTrip(t *testing.T) {
	cfg := workload.DefaultConfig(120, 3, 42)
	cfg.Weighted = true
	ins := workload.Random(cfg)
	ins.Alpha = 2

	var buf bytes.Buffer
	if err := trace.WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}

	type policy struct {
		name string
		mode sched.ValidateMode
		run  func(*sched.Instance) (*sched.Outcome, error)
	}
	policies := []policy{
		{"flowtime", sched.ValidateMode{RequireUnitSpeed: true}, func(in *sched.Instance) (*sched.Outcome, error) {
			r, err := flowtime.Run(in, flowtime.Options{Epsilon: 0.3})
			if err != nil {
				return nil, err
			}
			return r.Outcome, nil
		}},
		{"speedscale", sched.ValidateMode{}, func(in *sched.Instance) (*sched.Outcome, error) {
			r, err := speedscale.Run(in, speedscale.Options{Epsilon: 0.3})
			if err != nil {
				return nil, err
			}
			return r.Outcome, nil
		}},
		{"greedy", sched.ValidateMode{RequireUnitSpeed: true}, baseline.GreedySPT},
		{"fcfs", sched.ValidateMode{RequireUnitSpeed: true}, baseline.FCFS},
		{"srpt", sched.ValidateMode{RequireUnitSpeed: true, AllowPreemption: true}, baseline.PreemptiveSRPT},
		{"wsrpt", sched.ValidateMode{RequireUnitSpeed: true, AllowMigration: true}, func(in *sched.Instance) (*sched.Outcome, error) {
			r, err := srpt.RunWeighted(in, srpt.WeightedOptions{})
			if err != nil {
				return nil, err
			}
			return r.Outcome, nil
		}},
	}
	for _, p := range policies {
		out, err := p.run(loaded)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if err := sched.ValidateOutcome(loaded, out, p.mode); err != nil {
			t.Fatalf("%s: audit failed: %v", p.name, err)
		}
		m, err := sched.ComputeMetrics(loaded, out)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if lb := lowerbound.SRPTBound(loaded); m.TotalFlow < lb-1e-6 && m.Rejected == 0 {
			t.Fatalf("%s: flow %v beat the SRPT lower bound %v without rejecting", p.name, m.TotalFlow, lb)
		}
		// Outcome must survive its own serialization.
		var ob bytes.Buffer
		if err := trace.WriteOutcome(&ob, out); err != nil {
			t.Fatal(err)
		}
		back, err := trace.ReadOutcome(&ob)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.ValidateOutcome(loaded, back, p.mode); err != nil {
			t.Fatalf("%s: round-tripped outcome failed audit: %v", p.name, err)
		}
	}
}

// TestDeterminism: identical inputs produce byte-identical outcomes across
// runs for every core algorithm.
func TestDeterminism(t *testing.T) {
	cfg := workload.DefaultConfig(300, 4, 17)
	cfg.Weighted = true
	ins := workload.Random(cfg)
	ins.Alpha = 2

	run := func() [3]string {
		var outs [3]string
		r1, err := flowtime.Run(ins, flowtime.Options{Epsilon: 0.3, TrackDual: true})
		if err != nil {
			t.Fatal(err)
		}
		var b1 bytes.Buffer
		if err := trace.WriteOutcome(&b1, r1.Outcome); err != nil {
			t.Fatal(err)
		}
		outs[0] = b1.String()
		r2, err := speedscale.Run(ins, speedscale.Options{Epsilon: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := trace.WriteOutcome(&b2, r2.Outcome); err != nil {
			t.Fatal(err)
		}
		outs[1] = b2.String()
		dl := workload.RandomDeadline(workload.DeadlineConfig{
			N: 40, M: 2, Seed: 3, Horizon: 60, MinVol: 1, MaxVol: 5, Slack: 2, Alpha: 2,
		})
		r3, err := energymin.Run(dl, energymin.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var b3 bytes.Buffer
		if err := trace.WriteOutcome(&b3, r3.Outcome); err != nil {
			t.Fatal(err)
		}
		outs[2] = b3.String()
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("algorithm %d is non-deterministic", i)
		}
	}
}

// TestRejectionNeverLosesJobs: across all three cores, every job ends in
// exactly one of Completed/Rejected even on degenerate instances.
func TestRejectionNeverLosesJobs(t *testing.T) {
	// Degenerate: all jobs identical and simultaneous.
	jobs := make([]sched.Job, 30)
	for i := range jobs {
		jobs[i] = sched.Job{ID: i, Release: 0, Weight: 1, Deadline: sched.NoDeadline, Proc: []float64{1, 1}}
	}
	ins := &sched.Instance{Machines: 2, Jobs: jobs}
	res, err := flowtime.Run(ins, flowtime.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Outcome.Completed) + len(res.Outcome.Rejected); got != 30 {
		t.Fatalf("flowtime lost jobs: %d/30", got)
	}
	ins2 := ins.Clone()
	ins2.Alpha = 2
	res2, err := speedscale.Run(ins2, speedscale.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res2.Outcome.Completed) + len(res2.Outcome.Rejected); got != 30 {
		t.Fatalf("speedscale lost jobs: %d/30", got)
	}
}
